// Package fixtures encodes the running example of Sultana & Li (EDBT 2018):
// the product table (Table 1), the user preference DAGs (Table 2), the
// brand-only clustering example (Table 3), and the sliding-window product
// table (Table 8). The preference DAGs are reconstructed from the paper's
// prose and worked examples (Examples 1.1, 3.5, 4.4, 4.7, 4.8, 5.1–5.5,
// 6.2, 6.3, 6.8, 6.9, 7.3, 7.6); every claim those examples make is
// asserted against these fixtures by the test suites, so the fixtures are
// exactly the instance the paper reasons about.
//
// Known paper inconsistency: Table 9 lists P_c1 = {o1, o3} for window
// [1, 6] over Table 8, but by the paper's own preference relations
// o3 = (12″, Apple, dual) dominates o1 = (17″, Lenovo, dual) for c1
// ((10−12.9 ≻ 16−18.9) from Example 3.5, (Apple ≻ Lenovo) from Example
// 1.1, CPU equal). The window tests therefore validate against a
// recompute-from-scratch reference rather than Table 9/10 verbatim.
package fixtures

import (
	"fmt"

	"repro/internal/object"
	"repro/internal/order"
	"repro/internal/pref"
)

// Attribute names of the laptop example, in table-column order.
const (
	AttrDisplay = "display"
	AttrBrand   = "brand"
	AttrCPU     = "CPU"
)

// Display buckets used by Table 2.
const (
	DUnder10 = "9.9-under"
	D10to12  = "10-12.9"
	D13to15  = "13-15.9"
	D16to18  = "16-18.9"
	D19up    = "19-up"
)

// DisplayBucket maps a numeric display size (inches) to its Table 2 bucket.
func DisplayBucket(inches float64) string {
	switch {
	case inches < 10:
		return DUnder10
	case inches < 13:
		return D10to12
	case inches < 16:
		return D13to15
	case inches < 19:
		return D16to18
	default:
		return D19up
	}
}

// Laptops is the full laptop example: domains, the 16 products of Table 1,
// and the preference profiles of Table 2 (c1, c2, plus the paper's derived
// virtual users U and Û for cross-checking).
type Laptops struct {
	Domains []*order.Domain // display, brand, CPU
	Objects []object.Object // o1..o16 (ids 0..15)
	C1, C2  *pref.Profile
	// U is the common preference relation of {c1, c2} as depicted in
	// Table 2 (equal to C1 ∩ C2; tests assert this).
	U *pref.Profile
	// UHat is the approximate common preference relation Û of Table 2.
	UHat *pref.Profile
}

type rawProduct struct {
	display float64
	brand   string
	cpu     string
}

// Table 1 of the paper, o1..o16 in order.
var table1 = []rawProduct{
	{12, "Apple", "single"},
	{14, "Apple", "dual"},
	{15, "Samsung", "dual"},
	{19, "Toshiba", "dual"},
	{9, "Samsung", "quad"},
	{11.5, "Sony", "single"},
	{9.5, "Lenovo", "quad"},
	{12.5, "Apple", "dual"},
	{19.5, "Sony", "single"},
	{9.5, "Lenovo", "triple"},
	{9, "Toshiba", "triple"},
	{8.5, "Samsung", "triple"},
	{14.5, "Sony", "dual"},
	{17, "Sony", "single"},
	{16.5, "Lenovo", "quad"},
	{16, "Toshiba", "single"},
}

// Table 8 of the paper (sliding-window example), o1..o7 in order.
var table8 = []rawProduct{
	{17, "Lenovo", "dual"},
	{9.5, "Sony", "single"},
	{12, "Apple", "dual"},
	{16, "Lenovo", "quad"},
	{19, "Toshiba", "single"},
	{12.5, "Samsung", "quad"},
	{14, "Apple", "dual"},
}

func makeDomains() []*order.Domain {
	dd := order.NewDomain(AttrDisplay)
	for _, v := range []string{DUnder10, D10to12, D13to15, D16to18, D19up} {
		dd.Intern(v)
	}
	db := order.NewDomain(AttrBrand)
	for _, v := range []string{"Apple", "Lenovo", "Samsung", "Sony", "Toshiba"} {
		db.Intern(v)
	}
	dc := order.NewDomain(AttrCPU)
	for _, v := range []string{"single", "dual", "triple", "quad"} {
		dc.Intern(v)
	}
	return []*order.Domain{dd, db, dc}
}

func makeObjects(doms []*order.Domain, raw []rawProduct) []object.Object {
	objs := make([]object.Object, len(raw))
	for i, p := range raw {
		objs[i] = object.Object{
			ID: i,
			Attrs: []int32{
				int32(doms[0].Intern(DisplayBucket(p.display))),
				int32(doms[1].Intern(p.brand)),
				int32(doms[2].Intern(p.cpu)),
			},
		}
	}
	return objs
}

func profile(doms []*order.Domain, display, brand, cpu [][2]string) *pref.Profile {
	p := pref.NewProfile(doms)
	for i, pairs := range [][][2]string{display, brand, cpu} {
		for _, t := range pairs {
			if err := p.Relation(i).AddValues(t[0], t[1]); err != nil {
				panic(fmt.Sprintf("fixtures: bad tuple %v on attr %d: %v", t, i, err))
			}
		}
	}
	return p
}

// NewLaptops builds the laptop example. Each call returns fresh, mutable
// copies so tests can mutate freely.
func NewLaptops() *Laptops {
	doms := makeDomains()
	l := &Laptops{Domains: doms, Objects: makeObjects(doms, table1)}

	// c1 (Table 2): display 13-15.9 ≻ 10-12.9 ≻ {16-18.9, 19-up} ≻ 9.9-under;
	// brand Apple ≻ Lenovo ≻ {Sony, Toshiba, Samsung}; CPU dual ≻ {triple,
	// quad} ≻ single.
	l.C1 = profile(doms,
		[][2]string{{D13to15, D10to12}, {D10to12, D16to18}, {D10to12, D19up}, {D16to18, DUnder10}, {D19up, DUnder10}},
		[][2]string{{"Apple", "Lenovo"}, {"Lenovo", "Sony"}, {"Lenovo", "Toshiba"}, {"Lenovo", "Samsung"}},
		[][2]string{{"dual", "triple"}, {"dual", "quad"}, {"triple", "single"}, {"quad", "single"}},
	)

	// c2 (Table 2): display chain 13-15.9 ≻ 16-18.9 ≻ 10-12.9 ≻ 19-up ≻
	// 9.9-under (the 16-18.9 ≻ 10-12.9 edge is fixed by Table 9's
	// PB_c2 = {o3,o4,o5,o6} and Table 10's P_c2 = {o4,o7}, which require
	// o4 ≻_c2 o6 over Table 8);
	// brand {Apple, Lenovo} ≻ Toshiba ≻ Sony, Lenovo ≻ Samsung (Apple and
	// Samsung incomparable, per Sec. 1 "its preference does not oppose it");
	// CPU quad ≻ triple ≻ dual ≻ single (Example 4.4).
	l.C2 = profile(doms,
		[][2]string{{D13to15, D16to18}, {D16to18, D10to12}, {D10to12, D19up}, {D19up, DUnder10}},
		[][2]string{{"Apple", "Toshiba"}, {"Lenovo", "Toshiba"}, {"Toshiba", "Sony"}, {"Lenovo", "Samsung"}},
		[][2]string{{"quad", "triple"}, {"triple", "dual"}, {"dual", "single"}},
	)

	// U = common preferences of {c1, c2} as depicted in Table 2. Tests
	// assert U == C1 ∩ C2.
	l.U = profile(doms,
		[][2]string{{D13to15, D10to12}, {D13to15, D16to18}, {D13to15, D19up}, {D13to15, DUnder10},
			{D10to12, D19up}, {D10to12, DUnder10}, {D16to18, DUnder10}, {D19up, DUnder10}},
		[][2]string{{"Apple", "Toshiba"}, {"Apple", "Sony"}, {"Lenovo", "Toshiba"}, {"Lenovo", "Sony"}, {"Lenovo", "Samsung"}},
		[][2]string{{"dual", "single"}, {"triple", "single"}, {"quad", "single"}},
	)

	// Û = approximate common preferences of Table 2: display is the chain
	// 13-15.9 ≻ 10-12.9 ≻ 16-18.9 ≻ 19-up ≻ 9.9-under; brand has
	// {Apple, Lenovo} on top, {Sony, Toshiba} in the middle, Samsung at the
	// bottom; CPU is the chain dual ≻ quad ≻ triple ≻ single (Example 6.3
	// requires quad above triple so that o15 replaces o7 in P̂U).
	l.UHat = profile(doms,
		[][2]string{{D13to15, D10to12}, {D10to12, D16to18}, {D16to18, D19up}, {D19up, DUnder10}},
		[][2]string{{"Apple", "Sony"}, {"Apple", "Toshiba"}, {"Lenovo", "Sony"}, {"Lenovo", "Toshiba"},
			{"Sony", "Samsung"}, {"Toshiba", "Samsung"}},
		[][2]string{{"dual", "quad"}, {"quad", "triple"}, {"triple", "single"}},
	)
	return l
}

// NewLaptopsSW returns the Table 8 object stream over the same domains and
// preference profiles (Sec. 7's running example).
func NewLaptopsSW() (*Laptops, []object.Object) {
	l := NewLaptops()
	return l, makeObjects(l.Domains, table8)
}

// Brands is the Table 3 example: six users' preferences over brand only,
// grouped into clusters U1 = {c1, c2}, U2 = {c3, c4}, U3 = {c5, c6}.
// The exact per-user relations are reconstructed from the frequency
// vectors of Examples 6.8 and 6.9.
type Brands struct {
	Dom      *order.Domain
	C        []*order.Relation // c1..c6 (index 0..5)
	U        []*order.Relation // U1..U3 common relations (index 0..2)
	Profiles []*pref.Profile   // the same six users as single-attribute profiles
}

// NewBrands builds the Table 3 example.
func NewBrands() *Brands {
	dom := order.NewDomain(AttrBrand)
	for _, v := range []string{"Apple", "Lenovo", "Samsung", "Toshiba"} {
		dom.Intern(v)
	}
	mk := func(pairs [][2]string) *order.Relation {
		return order.MustFromTuples(dom, pairs)
	}
	b := &Brands{Dom: dom}
	b.C = []*order.Relation{
		// c1: Apple ≻ Lenovo ≻ Samsung, Toshiba ≻ Samsung.
		mk([][2]string{{"Apple", "Lenovo"}, {"Lenovo", "Samsung"}, {"Toshiba", "Samsung"}}),
		// c2: Apple ≻ Lenovo, Toshiba ≻ Lenovo ≻ Samsung.
		mk([][2]string{{"Apple", "Lenovo"}, {"Toshiba", "Lenovo"}, {"Lenovo", "Samsung"}}),
		// c3: Samsung ≻ Lenovo ≻ Toshiba ≻ Apple.
		mk([][2]string{{"Samsung", "Lenovo"}, {"Lenovo", "Toshiba"}, {"Toshiba", "Apple"}}),
		// c4: Samsung ≻ Lenovo ≻ {Apple, Toshiba}.
		mk([][2]string{{"Samsung", "Lenovo"}, {"Lenovo", "Apple"}, {"Lenovo", "Toshiba"}}),
		// c5: Lenovo ≻ {Apple, Toshiba}, Apple ≻ Samsung, Toshiba ≻ Samsung.
		mk([][2]string{{"Lenovo", "Apple"}, {"Lenovo", "Toshiba"}, {"Apple", "Samsung"}, {"Toshiba", "Samsung"}}),
		// c6: Lenovo ≻ {Apple, Toshiba}, Apple ≻ {Toshiba, Samsung}.
		mk([][2]string{{"Lenovo", "Apple"}, {"Lenovo", "Toshiba"}, {"Apple", "Samsung"}, {"Apple", "Toshiba"}}),
	}
	b.U = []*order.Relation{
		b.C[0].Intersect(b.C[1]),
		b.C[2].Intersect(b.C[3]),
		b.C[4].Intersect(b.C[5]),
	}
	for _, r := range b.C {
		p := pref.NewProfile([]*order.Domain{dom})
		p.SetRelation(0, r.Clone())
		b.Profiles = append(b.Profiles, p)
	}
	return b
}
