package fixtures

import (
	"testing"

	"repro/internal/pref"
)

// Every fixture relation must satisfy the strict-partial-order axioms.
func TestFixtureRelationsAreSPOs(t *testing.T) {
	l := NewLaptops()
	for name, p := range map[string]*pref.Profile{"c1": l.C1, "c2": l.C2, "U": l.U, "Û": l.UHat} {
		for d := 0; d < p.Dims(); d++ {
			if err := p.Relation(d).IsStrictPartialOrder(); err != nil {
				t.Errorf("%s attr %d: %v", name, d, err)
			}
		}
	}
	b := NewBrands()
	for i, r := range b.C {
		if err := r.IsStrictPartialOrder(); err != nil {
			t.Errorf("brands c%d: %v", i+1, err)
		}
	}
	for i, r := range b.U {
		if err := r.IsStrictPartialOrder(); err != nil {
			t.Errorf("brands U%d: %v", i+1, err)
		}
	}
}

func TestDisplayBucket(t *testing.T) {
	cases := map[float64]string{
		8.5:  DUnder10,
		9.9:  DUnder10,
		10:   D10to12,
		12.9: D10to12,
		13:   D13to15,
		15.9: D13to15,
		16:   D16to18,
		18.9: D16to18,
		19:   D19up,
		25:   D19up,
	}
	for in, want := range cases {
		if got := DisplayBucket(in); got != want {
			t.Errorf("DisplayBucket(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	l := NewLaptops()
	if len(l.Objects) != 16 {
		t.Fatalf("Table 1 has %d objects, want 16", len(l.Objects))
	}
	// o15 = (16.5, Lenovo, quad): bucket 16-18.9.
	o15 := l.Objects[14]
	if l.Domains[0].Value(int(o15.Attrs[0])) != D16to18 {
		t.Error("o15 display bucket wrong")
	}
	if l.Domains[1].Value(int(o15.Attrs[1])) != "Lenovo" {
		t.Error("o15 brand wrong")
	}
}

func TestFreshCopiesAreIndependent(t *testing.T) {
	a := NewLaptops()
	b := NewLaptops()
	if err := a.C1.Relation(1).AddValues("Toshiba", "Sony"); err != nil {
		t.Fatal(err)
	}
	if b.C1.Relation(1).HasValues("Toshiba", "Sony") {
		t.Fatal("fixture instances must be independent")
	}
}

func TestLaptopsSW(t *testing.T) {
	l, objs := NewLaptopsSW()
	if len(objs) != 7 {
		t.Fatalf("Table 8 has %d objects, want 7", len(objs))
	}
	// o7 = (14, Apple, dual).
	o7 := objs[6]
	if l.Domains[0].Value(int(o7.Attrs[0])) != D13to15 ||
		l.Domains[1].Value(int(o7.Attrs[1])) != "Apple" ||
		l.Domains[2].Value(int(o7.Attrs[2])) != "dual" {
		t.Errorf("o7 = %v", o7)
	}
}

// The Brands fixture encodes the exact cluster relations of Examples
// 5.1–5.5 (sizes 4, 5, 4 and the stated intersections).
func TestBrandsClusterRelations(t *testing.T) {
	b := NewBrands()
	if got := b.U[0].Size(); got != 4 {
		t.Errorf("|≻U1| = %d, want 4", got)
	}
	if got := b.U[1].Size(); got != 5 {
		t.Errorf("|≻U2| = %d, want 5", got)
	}
	if got := b.U[2].Size(); got != 4 {
		t.Errorf("|≻U3| = %d, want 4", got)
	}
	if len(b.Profiles) != 6 {
		t.Fatalf("profiles = %d", len(b.Profiles))
	}
}
