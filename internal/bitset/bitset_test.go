package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(10)
	if s.Contains(3) {
		t.Fatal("empty set should not contain 3")
	}
	s.Add(3)
	s.Add(64)
	s.Add(129)
	for _, v := range []int{3, 64, 129} {
		if !s.Contains(v) {
			t.Errorf("set should contain %d", v)
		}
	}
	for _, v := range []int{0, 2, 4, 63, 65, 128, 130} {
		if s.Contains(v) {
			t.Errorf("set should not contain %d", v)
		}
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("64 should be removed")
	}
	s.Remove(9999) // absent, beyond capacity: no-op
	s.Remove(-1)   // no-op
	if got := s.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	New(4).Add(-1)
}

func TestContainsNegative(t *testing.T) {
	if New(4).Contains(-5) {
		t.Fatal("Contains(-5) must be false")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero value should be empty")
	}
	s.Add(100)
	if !s.Contains(100) {
		t.Fatal("zero value Set should accept Add")
	}
}

func TestCountEmptyClear(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 100})
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	if s.Empty() {
		t.Fatal("set should not be empty")
	}
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("cleared set should be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromSlice([]int{1, 2})
	c := s.Clone()
	c.Add(3)
	if s.Contains(3) {
		t.Fatal("mutating clone changed original")
	}
	s.Add(4)
	if c.Contains(4) {
		t.Fatal("mutating original changed clone")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromSlice([]int{1, 2, 3})
	tgt := FromSlice([]int{500})
	tgt.CopyFrom(s)
	if !tgt.Equal(s) {
		t.Fatalf("CopyFrom: got %v, want %v", tgt, s)
	}
	// target smaller than source
	small := New(0)
	small.CopyFrom(s)
	if !small.Equal(s) {
		t.Fatalf("CopyFrom into small: got %v", small)
	}
}

func TestOrAndAndNot(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 200})
	b := FromSlice([]int{2, 3, 4})

	u := a.Clone()
	if changed := u.Or(b); !changed {
		t.Error("Or should report change")
	}
	wantU := []int{1, 2, 3, 4, 200}
	if !reflect.DeepEqual(u.Slice(), wantU) {
		t.Errorf("union = %v, want %v", u.Slice(), wantU)
	}
	if changed := u.Or(b); changed {
		t.Error("second Or should report no change")
	}

	i := a.Clone()
	i.And(b)
	if !reflect.DeepEqual(i.Slice(), []int{2, 3}) {
		t.Errorf("intersection = %v, want [2 3]", i.Slice())
	}

	d := a.Clone()
	d.AndNot(b)
	if !reflect.DeepEqual(d.Slice(), []int{1, 200}) {
		t.Errorf("difference = %v, want [1 200]", d.Slice())
	}
}

func TestOrGrows(t *testing.T) {
	a := New(4)
	b := FromSlice([]int{300})
	a.Or(b)
	if !a.Contains(300) {
		t.Fatal("Or should grow receiver")
	}
}

func TestAndShrinksLogically(t *testing.T) {
	a := FromSlice([]int{1, 300})
	b := FromSlice([]int{1})
	a.And(b)
	if a.Contains(300) {
		t.Fatal("And with shorter set must clear high words")
	}
}

func TestCountsNoAlloc(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 128})
	b := FromSlice([]int{2, 3, 4})
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	if got := a.UnionCount(b); got != 5 {
		t.Errorf("UnionCount = %d, want 5", got)
	}
	if got := a.DifferenceCount(b); got != 2 {
		t.Errorf("DifferenceCount = %d, want 2", got)
	}
	if got := b.DifferenceCount(a); got != 1 {
		t.Errorf("reverse DifferenceCount = %d, want 1", got)
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice([]int{1, 100})
	b := FromSlice([]int{100})
	c := FromSlice([]int{2})
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊄ a expected")
	}
	if !a.Equal(a.Clone()) {
		t.Error("a should equal its clone")
	}
	// Equal across different backing lengths.
	c := New(1000)
	c.Add(1)
	c.Add(2)
	if !a.Equal(c) || !c.Equal(a) {
		t.Error("Equal must ignore trailing zero words")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4})
	var seen []int
	s.ForEach(func(v int) bool {
		seen = append(seen, v)
		return v < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Errorf("early stop saw %v, want [1 2]", seen)
	}
}

func TestMin(t *testing.T) {
	if got := New(10).Min(); got != -1 {
		t.Errorf("Min of empty = %d, want -1", got)
	}
	if got := FromSlice([]int{130, 5, 64}).Min(); got != 5 {
		t.Errorf("Min = %d, want 5", got)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice([]int{1, 5}).String(); got != "{1, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// --- property-based tests ---

// randomSet builds a set plus its reference map representation.
func randomSet(r *rand.Rand, max int) (*Set, map[int]bool) {
	s := New(max)
	m := make(map[int]bool)
	n := r.Intn(max)
	for i := 0; i < n; i++ {
		v := r.Intn(max)
		s.Add(v)
		m[v] = true
	}
	return s, m
}

func TestQuickSetMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, m := randomSet(r, 300)
		if s.Count() != len(m) {
			return false
		}
		want := make([]int, 0, len(m))
		for v := range m {
			want = append(want, v)
		}
		sort.Ints(want)
		return reflect.DeepEqual(s.Slice(), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, am := randomSet(r, 200)
		b, bm := randomSet(r, 200)

		inter, union, diff := 0, 0, 0
		seen := map[int]bool{}
		for v := range am {
			seen[v] = true
			if bm[v] {
				inter++
			} else {
				diff++
			}
		}
		for v := range bm {
			seen[v] = true
		}
		union = len(seen)

		if a.IntersectionCount(b) != inter {
			return false
		}
		if a.UnionCount(b) != union {
			return false
		}
		if a.DifferenceCount(b) != diff {
			return false
		}
		// |A| = |A∩B| + |A−B|
		if a.Count() != inter+diff {
			return false
		}
		// De Morgan-ish sanity: |A∪B| = |A| + |B| − |A∩B|
		return union == a.Count()+b.Count()-inter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOrAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := randomSet(r, 200)
		b, _ := randomSet(r, 200)
		u := a.Clone()
		u.Or(b)
		i := a.Clone()
		i.And(b)
		// A∩B ⊆ A ⊆ A∪B
		if !i.SubsetOf(a) || !a.SubsetOf(u) {
			return false
		}
		// (A∪B) − B = A − B
		d1 := u.Clone()
		d1.AndNot(b)
		d2 := a.Clone()
		d2.AndNot(b)
		return d1.Equal(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
