package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset. The zero value is an empty set ready for use.
// Methods with a receiver pointer may grow the set; read-only methods
// tolerate sets of different lengths.
type Set struct {
	words []uint64
}

// New returns a set with capacity for values in [0, n) pre-allocated.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice builds a set containing every value in vs.
func FromSlice(vs []int) *Set {
	s := &Set{}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	nw := make([]uint64, word+1)
	copy(nw, s.words)
	s.words = nw
}

// Add inserts v into the set. v must be non-negative.
func (s *Set) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("bitset: negative value %d", v))
	}
	w := v / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(v%wordBits)
}

// Remove deletes v from the set; removing an absent value is a no-op.
func (s *Set) Remove(v int) {
	if v < 0 {
		return
	}
	w := v / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(v%wordBits)
	}
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	if v < 0 {
		return false
	}
	w := v / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(v%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom makes s an exact copy of t, reusing s's storage when possible.
func (s *Set) CopyFrom(t *Set) {
	if cap(s.words) < len(t.words) {
		s.words = make([]uint64, len(t.words))
	} else {
		s.words = s.words[:len(t.words)]
	}
	copy(s.words, t.words)
}

// Or sets s = s ∪ t and reports whether s changed.
func (s *Set) Or(t *Set) bool {
	changed := false
	if len(t.words) > len(s.words) {
		s.grow(len(t.words) - 1)
	}
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// And sets s = s ∩ t.
func (s *Set) And(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// AndNot sets s = s − t.
func (s *Set) AndNot(t *Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// UnionCount returns |s ∪ t| without allocating.
func (s *Set) UnionCount(t *Set) int {
	c := 0
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range long {
		if i < len(short) {
			w |= short[i]
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// DifferenceCount returns |s − t| without allocating.
func (s *Set) DifferenceCount(t *Set) int {
	c := 0
	for i, w := range s.words {
		if i < len(t.words) {
			w &^= t.words[i]
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// SubsetOf reports whether s ⊆ t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range long {
		var sw uint64
		if i < len(short) {
			sw = short[i]
		}
		if w != sw {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(v int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{1, 5, 9}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", v)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
