package bitset

import (
	"math/rand"
	"testing"
)

func benchSets(n, fill int) (*Set, *Set) {
	r := rand.New(rand.NewSource(7))
	a, b := New(n), New(n)
	for i := 0; i < fill; i++ {
		a.Add(r.Intn(n))
		b.Add(r.Intn(n))
	}
	return a, b
}

func BenchmarkIntersectionCount(b *testing.B) {
	x, y := benchSets(512, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectionCount(y)
	}
}

func BenchmarkOr(b *testing.B) {
	x, y := benchSets(512, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkContains(b *testing.B) {
	x, _ := benchSets(512, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Contains(i & 511)
	}
}

func BenchmarkForEach(b *testing.B) {
	x, _ := benchSets(512, 200)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(v int) bool { s += v; return true })
	}
	_ = s
}
