// Package bitset provides a dense, growable set of small non-negative
// integers backed by a []uint64. It is the kernel under the
// partial-order engine of internal/order (each transitive-closure row of
// a Def. 3.1 preference relation is one bitset) and the C_o target
// bookkeeping of Algs. 1–2: intersection of preference relations
// (Def. 4.1's common relation), dominance tests, and target-set
// membership all reduce to word-parallel operations on these sets.
package bitset
