package storage

import (
	"errors"
	"reflect"
	"testing"
)

// Fuzz targets for the binary codec: whatever bytes arrive — torn tails,
// bit rot, hostile input — decoding must either succeed or fail with
// ErrCorrupt. It must never panic, never allocate proportionally to a
// corrupt length field, and a successful decode must re-encode to a
// payload that decodes identically (the codec's canonical round trip).
//
// CI runs these as a short -fuzztime smoke on every push; longer local
// sessions just raise the budget:
//
//	go test -run=^$ -fuzz=FuzzDecodeRecord -fuzztime=60s ./internal/storage

func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range append(sampleRecords(), lifecycleRecords()...) {
		f.Add(encodeRecord(rec))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodeRecord(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decodeRecord(%x): error %v does not wrap ErrCorrupt", b, err)
			}
			return
		}
		// A successful decode must survive a canonical round trip. The
		// re-encoded bytes may differ from the input (LEB128 admits
		// redundant encodings), but the decoded value must be stable.
		again, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			t.Fatalf("re-decode of %+v: %v", rec, err)
		}
		if !reflect.DeepEqual(again, rec) {
			t.Fatalf("canonical round trip changed the record: %+v vs %+v", again, rec)
		}
	})
}

func FuzzUnmarshalSnapshot(f *testing.F) {
	f.Add(sampleSnapshot().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := UnmarshalSnapshot(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("UnmarshalSnapshot(%x): error %v does not wrap ErrCorrupt", b, err)
			}
			return
		}
		again, err := UnmarshalSnapshot(snap.Marshal())
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot: %v", err)
		}
		if !reflect.DeepEqual(again, snap) {
			t.Fatalf("canonical round trip changed the snapshot")
		}
	})
}
