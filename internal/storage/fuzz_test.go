package storage

import (
	"errors"
	"reflect"
	"testing"
)

// Fuzz targets for the binary codec: whatever bytes arrive — torn tails,
// bit rot, hostile input — decoding must either succeed or fail with
// ErrCorrupt. It must never panic, never allocate proportionally to a
// corrupt length field, and a successful decode must re-encode to a
// payload that decodes identically (the codec's canonical round trip).
//
// CI runs these as a short -fuzztime smoke on every push; longer local
// sessions just raise the budget:
//
//	go test -run=^$ -fuzz=FuzzDecodeRecord -fuzztime=60s ./internal/storage

func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range append(sampleRecords(), lifecycleRecords()...) {
		f.Add(encodeRecord(rec))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodeRecord(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decodeRecord(%x): error %v does not wrap ErrCorrupt", b, err)
			}
			return
		}
		// A successful decode must survive a canonical round trip. The
		// re-encoded bytes may differ from the input (LEB128 admits
		// redundant encodings), but the decoded value must be stable.
		again, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			t.Fatalf("re-decode of %+v: %v", rec, err)
		}
		if !reflect.DeepEqual(again, rec) {
			t.Fatalf("canonical round trip changed the record: %+v vs %+v", again, rec)
		}
	})
}

func FuzzUnmarshalSnapshot(f *testing.F) {
	f.Add(sampleSnapshot().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00})
	// String-table-heavy seed: empty, unicode, and duplicate interned
	// values; names that collide with values; an engine section whose ids
	// index the object table (format v3), including a tombstoned ring slot.
	rich := sampleSnapshot()
	rich.Domains = [][]string{{"", "Škoda", "long value with spaces", "x"}, {"x", "x\x00y", "ÿ"}}
	rich.Users[0].Name = ""
	rich.Users[1].Name = "Škoda"
	rich.Objects[1].Name = ""
	f.Add(rich.Marshal())
	// Torn tails: cut inside the string table, the object table, and the
	// engine id lists. Every prefix must decode to ErrCorrupt, not panic.
	body := rich.Marshal()
	for _, cut := range []int{1, len(body) / 4, len(body) / 2, len(body) - 3} {
		f.Add(body[:cut])
	}
	// Engine section referencing an id outside the object table: intact
	// framing, unresolvable state — must be ErrCorrupt.
	oob := sampleSnapshot()
	oob.Engine.UserFronts[0][0].ID = 99
	f.Add(oob.Marshal())
	f.Fuzz(func(t *testing.T, b []byte) {
		snap, err := UnmarshalSnapshot(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("UnmarshalSnapshot(%x): error %v does not wrap ErrCorrupt", b, err)
			}
			return
		}
		again, err := UnmarshalSnapshot(snap.Marshal())
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot: %v", err)
		}
		if !reflect.DeepEqual(again, snap) {
			t.Fatalf("canonical round trip changed the snapshot")
		}
	})
}
