package storage

import (
	"fmt"
	"sync"
)

// MemStore is an in-memory Store: the same contract as FileStore with
// no durability, for tests and for ephemeral monitors that still want
// the snapshot/restore machinery (e.g. state hand-off between monitor
// generations in one process).
type MemStore struct {
	mu    sync.Mutex
	recs  []Record
	snaps []memSnap
	meta  map[string][]byte

	appendedRecords uint64
	appendedBytes   uint64
	lastAppendedSeq uint64
}

type memSnap struct {
	seq  uint64
	body []byte
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// Append stores copies of the records (callers may reuse Values).
func (m *MemStore) Append(recs ...Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range recs {
		if n := len(m.recs); n > 0 && rec.Seq != m.recs[n-1].Seq+1 {
			return fmt.Errorf("%w: WAL sequence gap: record %d follows record %d", ErrCorrupt, rec.Seq, m.recs[n-1].Seq)
		}
		rec.Values = append([]string(nil), rec.Values...)
		rec.Prefs = append([]RecordPref(nil), rec.Prefs...)
		m.recs = append(m.recs, rec)
		m.appendedRecords++
		m.appendedBytes += uint64(len(encodeRecord(rec)) + recFrameLen)
		m.lastAppendedSeq = rec.Seq
	}
	return nil
}

// Replay streams records with Seq > afterSeq in order.
func (m *MemStore) Replay(afterSeq uint64, fn func(rec Record) error) error {
	m.mu.Lock()
	recs := append([]Record(nil), m.recs...)
	m.mu.Unlock()
	for _, rec := range recs {
		if rec.Seq <= afterSeq {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot stores a copy of the body keyed by seq.
func (m *MemStore) WriteSnapshot(seq uint64, body []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := memSnap{seq: seq, body: append([]byte(nil), body...)}
	for i, s := range m.snaps {
		if s.seq == seq {
			m.snaps[i] = snap
			return nil
		}
	}
	m.snaps = append(m.snaps, snap)
	return nil
}

// LoadSnapshot returns the newest stored snapshot.
func (m *MemStore) LoadSnapshot() (uint64, []byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.snaps) == 0 {
		return 0, nil, false, nil
	}
	best := m.snaps[0]
	for _, s := range m.snaps[1:] {
		if s.seq > best.seq {
			best = s
		}
	}
	return best.seq, append([]byte(nil), best.body...), true, nil
}

// Prune keeps the newest keepSnapshots snapshots and drops records at
// or below the oldest retained one.
func (m *MemStore) Prune() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.snaps) == 0 {
		return nil
	}
	for len(m.snaps) > keepSnapshots {
		oldest := 0
		for i, s := range m.snaps {
			if s.seq < m.snaps[oldest].seq {
				oldest = i
			}
		}
		m.snaps = append(m.snaps[:oldest], m.snaps[oldest+1:]...)
	}
	floor := m.snaps[0].seq
	for _, s := range m.snaps[1:] {
		if s.seq < floor {
			floor = s.seq
		}
	}
	keep := m.recs[:0]
	for _, rec := range m.recs {
		if rec.Seq > floor {
			keep = append(keep, rec)
		}
	}
	m.recs = keep
	return nil
}

// Stats reports the in-memory footprint (encoded sizes, for parity
// with FileStore).
func (m *MemStore) Stats() (Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		AppendedRecords: m.appendedRecords,
		AppendedBytes:   m.appendedBytes,
		LastAppendedSeq: m.lastAppendedSeq,
	}
	if len(m.recs) > 0 {
		st.Segments = 1
	}
	for _, rec := range m.recs {
		st.WALBytes += int64(len(encodeRecord(rec)) + recFrameLen)
	}
	for _, s := range m.snaps {
		st.Snapshots++
		if s.seq >= st.LastSnapshotSeq {
			st.LastSnapshotSeq = s.seq
			st.SnapshotBytes = int64(len(s.body)) + snapHeaderLen
		}
	}
	return st, nil
}

// PutMeta replaces a coordination record (a copy of value is kept).
func (m *MemStore) PutMeta(key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.meta == nil {
		m.meta = make(map[string][]byte)
	}
	m.meta[key] = append([]byte(nil), value...)
	return nil
}

// GetMeta reads a coordination record; ok is false when never written.
func (m *MemStore) GetMeta(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.meta[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

var _ Store = (*MemStore)(nil)
var _ MetaStore = (*MemStore)(nil)
