package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/object"
)

// Binary encoding primitives shared by WAL record payloads and snapshot
// bodies. The vocabulary (documented byte-for-byte in
// docs/PERSISTENCE.md) is deliberately tiny:
//
//	u8      one byte
//	f64     IEEE-754 bits, 8 bytes little-endian
//	uvar    unsigned LEB128 varint (encoding/binary.PutUvarint)
//	str     uvar byte length + raw UTF-8 bytes
//	list<T> uvar element count + elements
//
// Framing (lengths, CRCs, magic numbers, versions) lives in the file
// layer; these payloads are pure content.

// enc builds a payload by appending to a byte slice.
type enc struct{ b []byte }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }
func (e *enc) uvar(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.uvar(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) strs(ss []string) {
	e.uvar(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// dec consumes a payload, remembering the first failure so call sites
// stay linear; err() reports it wrapped in ErrCorrupt.
type dec struct {
	b    []byte
	pos  int
	fail bool
}

func (d *dec) err() error {
	if d.fail {
		return fmt.Errorf("%w: truncated or malformed payload at offset %d", ErrCorrupt, d.pos)
	}
	return nil
}

func (d *dec) u8() uint8 {
	if d.fail || d.pos >= len(d.b) {
		d.fail = true
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *dec) bool() bool { return d.u8() == 1 }

func (d *dec) uvar() uint64 {
	if d.fail {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail = true
		return 0
	}
	d.pos += n
	return v
}

// length reads a uvar meant to size an allocation, rejecting values
// that could not possibly fit in the remaining bytes (every counted
// element occupies at least one byte), so corrupt counts cannot drive
// huge allocations.
func (d *dec) length() int {
	v := d.uvar()
	if d.fail || v > uint64(len(d.b)-d.pos) {
		d.fail = true
		return 0
	}
	return int(v)
}

func (d *dec) f64() float64 {
	if d.fail || d.pos+8 > len(d.b) {
		d.fail = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.pos:]))
	d.pos += 8
	return v
}

func (d *dec) str() string {
	n := d.length()
	if d.fail {
		return ""
	}
	s := string(d.b[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *dec) strs() []string {
	n := d.length()
	if d.fail {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *dec) done() bool { return !d.fail && d.pos == len(d.b) }

// EncodeRecord serializes a WAL record to its codec-v2 payload bytes,
// the same encoding the file store frames into segments. The replication
// feed ships these payloads over HTTP (internal/replica frames them).
func EncodeRecord(rec Record) []byte { return encodeRecord(rec) }

// DecodeRecord parses one codec-v2 WAL record payload; damage is
// ErrCorrupt, never a panic.
func DecodeRecord(b []byte) (Record, error) { return decodeRecord(b) }

// encodeRecord serializes a WAL record payload:
//
//	uvar seq, u8 op, then per op:
//	  OpObject:            str name, list<str> values
//	  OpPreference:        str user, str attr, str better, str worse
//	  OpAddUser:           str name, list<pref>(str attr, str better, str worse)
//	  OpRemoveUser:        str user
//	  OpRetractPreference: str user, str attr, str better, str worse
//	  OpRemoveObject:      str name
func encodeRecord(rec Record) []byte {
	e := &enc{b: make([]byte, 0, 16+len(rec.Name))}
	e.uvar(rec.Seq)
	e.u8(uint8(rec.Op))
	switch rec.Op {
	case OpObject:
		e.str(rec.Name)
		e.strs(rec.Values)
	case OpPreference, OpRetractPreference:
		e.str(rec.User)
		e.str(rec.Attr)
		e.str(rec.Better)
		e.str(rec.Worse)
	case OpAddUser:
		e.str(rec.Name)
		e.uvar(uint64(len(rec.Prefs)))
		for _, p := range rec.Prefs {
			e.str(p.Attr)
			e.str(p.Better)
			e.str(p.Worse)
		}
	case OpRemoveUser:
		e.str(rec.User)
	case OpRemoveObject:
		e.str(rec.Name)
	}
	return e.b
}

// decodeRecord parses one WAL record payload.
func decodeRecord(b []byte) (Record, error) {
	d := &dec{b: b}
	rec := Record{Seq: d.uvar(), Op: Op(d.u8())}
	switch rec.Op {
	case OpObject:
		rec.Name = d.str()
		rec.Values = d.strs()
	case OpPreference, OpRetractPreference:
		rec.User = d.str()
		rec.Attr = d.str()
		rec.Better = d.str()
		rec.Worse = d.str()
	case OpAddUser:
		rec.Name = d.str()
		n := d.length()
		if !d.fail && n > 0 {
			rec.Prefs = make([]RecordPref, n)
			for i := range rec.Prefs {
				rec.Prefs[i] = RecordPref{Attr: d.str(), Better: d.str(), Worse: d.str()}
			}
		}
	case OpRemoveUser:
		rec.User = d.str()
	case OpRemoveObject:
		rec.Name = d.str()
	default:
		if !d.fail {
			return Record{}, fmt.Errorf("%w: unknown WAL op %d", ErrCorrupt, rec.Op)
		}
	}
	if !d.done() {
		if err := d.err(); err != nil {
			return Record{}, err
		}
		return Record{}, fmt.Errorf("%w: %d trailing bytes after WAL record", ErrCorrupt, len(b)-d.pos)
	}
	return rec, nil
}

// Marshal encodes the snapshot body (the bytes under the snapshot file
// header). Layout, in order (format version 2):
//
//	u8 algorithm, uvar window, u8 measure, f64 branchCut,
//	uvar clusterCount, uvar theta1, f64 theta2
//	uvar baseUsers
//	list<list<str>> domains             (interned values, id order)
//	list<user> users                    (str name, u8 alive,
//	                                     nDims × list<tuple>(uvar better, uvar worse))
//	list<list<uvar>> clusters           (member user indices; empty = dormant)
//	list<obj> objects                   (str name, u8 alive, nDims × uvar attr)
//	uvar ×5 counters                    (comparisons, filter, verify, delivered, processed)
//	engine state                        (see encodeEngine)
func (s *Snapshot) Marshal() []byte {
	e := &enc{b: make([]byte, 0, 1024)}
	e.u8(s.Algorithm)
	e.uvar(uint64(s.Window))
	e.u8(s.Measure)
	e.f64(s.BranchCut)
	e.uvar(uint64(s.ClusterCount))
	e.uvar(uint64(s.Theta1))
	e.f64(s.Theta2)
	e.uvar(uint64(s.BaseUsers))
	e.uvar(uint64(len(s.Domains)))
	for _, values := range s.Domains {
		e.strs(values)
	}
	dims := len(s.Domains)
	e.uvar(uint64(len(s.Users)))
	for _, u := range s.Users {
		e.str(u.Name)
		e.bool(u.Alive)
		for d := 0; d < dims; d++ {
			var tuples [][2]int
			if d < len(u.Prefs) {
				tuples = u.Prefs[d]
			}
			e.uvar(uint64(len(tuples)))
			for _, t := range tuples {
				e.uvar(uint64(t[0]))
				e.uvar(uint64(t[1]))
			}
		}
	}
	e.uvar(uint64(len(s.Clusters)))
	for _, members := range s.Clusters {
		e.ints(members)
	}
	e.uvar(uint64(len(s.Objects)))
	for _, o := range s.Objects {
		e.str(o.Name)
		e.bool(o.Alive)
		for d := 0; d < dims; d++ {
			e.uvar(uint64(o.Attrs[d]))
		}
	}
	e.uvar(s.Counters.Comparisons)
	e.uvar(s.Counters.FilterComparisons)
	e.uvar(s.Counters.VerifyComparisons)
	e.uvar(s.Counters.Delivered)
	e.uvar(s.Counters.Processed)
	encodeEngine(e, s.Engine, dims)
	return e.b
}

// UnmarshalSnapshot decodes a snapshot body. Any structural damage is
// reported as ErrCorrupt.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	d := &dec{b: b}
	s := &Snapshot{
		Algorithm:    d.u8(),
		Window:       int(d.uvar()),
		Measure:      d.u8(),
		BranchCut:    d.f64(),
		ClusterCount: int(d.uvar()),
		Theta1:       int(d.uvar()),
		Theta2:       d.f64(),
		BaseUsers:    int(d.uvar()),
	}
	s.Domains = make([][]string, d.length())
	for i := range s.Domains {
		s.Domains[i] = d.strs()
	}
	dims := len(s.Domains)
	s.Users = make([]UserState, d.length())
	for i := range s.Users {
		u := UserState{Name: d.str(), Alive: d.bool(), Prefs: make([][][2]int, dims)}
		for dim := 0; dim < dims && !d.fail; dim++ {
			n := d.length()
			if d.fail {
				break
			}
			u.Prefs[dim] = make([][2]int, n)
			for t := range u.Prefs[dim] {
				u.Prefs[dim][t] = [2]int{int(d.uvar()), int(d.uvar())}
			}
		}
		s.Users[i] = u
		if d.fail {
			break
		}
	}
	s.Clusters = make([][]int, d.length())
	for i := range s.Clusters {
		s.Clusters[i] = d.intList()
	}
	s.Objects = make([]ObjectState, d.length())
	for i := range s.Objects {
		o := ObjectState{Name: d.str(), Alive: d.bool(), Attrs: make([]int32, dims)}
		for dim := 0; dim < dims; dim++ {
			o.Attrs[dim] = int32(d.uvar())
		}
		s.Objects[i] = o
		if d.fail {
			break
		}
	}
	s.Counters.Comparisons = d.uvar()
	s.Counters.FilterComparisons = d.uvar()
	s.Counters.VerifyComparisons = d.uvar()
	s.Counters.Delivered = d.uvar()
	s.Counters.Processed = d.uvar()
	var err error
	if s.Engine, err = decodeEngine(d, dims, s.Objects); err != nil {
		return nil, err
	}
	if !d.done() {
		if err := d.err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot body", ErrCorrupt, len(b)-d.pos)
	}
	return s, nil
}

func (e *enc) ints(v []int) {
	e.uvar(uint64(len(v)))
	for _, x := range v {
		e.uvar(uint64(x))
	}
}

func (d *dec) intList() []int {
	n := d.length()
	if d.fail {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.uvar())
	}
	return out
}

// encodeEngine serializes an EngineState. Since object ids are dense
// indices into the snapshot's object registry, frontier, buffer, and
// ring entries are stored as bare ids and resolved against that registry
// on decode — format v3; v2 carried a per-snapshot dedup table of
// id → attrs here that duplicated what the registry already holds.
//
//	uvar nDims
//	list<list<uvar>> userFronts         (object ids, scan order)
//	list<list<uvar>> clusterFronts
//	u8 hasUserBuffers [+ list<list<uvar>>]
//	u8 hasClusterBuffers [+ list<list<uvar>>]
//	u8 hasRing [+ uvar seen, list<uvar> ring tail as id+1; 0 = tombstone]
//
// Ring entries are shifted by one because a slot whose object was
// removed (RemoveObject) holds a tombstone with a negative id: 0 encodes
// the tombstone, id+1 encodes a live slot.
func encodeEngine(e *enc, st *core.EngineState, dims int) {
	e.uvar(uint64(dims))
	idList := func(l []object.Object) {
		e.uvar(uint64(len(l)))
		for _, o := range l {
			e.uvar(uint64(o.ID))
		}
	}
	lists := func(ls [][]object.Object) {
		e.uvar(uint64(len(ls)))
		for _, l := range ls {
			idList(l)
		}
	}
	lists(st.UserFronts)
	lists(st.ClusterFronts)
	if st.UserBuffers != nil {
		e.u8(1)
		lists(st.UserBuffers)
	} else {
		e.u8(0)
	}
	if st.ClusterBuffers != nil {
		e.u8(1)
		lists(st.ClusterBuffers)
	} else {
		e.u8(0)
	}
	if st.HasRing {
		e.u8(1)
		e.uvar(uint64(st.RingSeen))
		e.uvar(uint64(len(st.Ring)))
		for _, o := range st.Ring {
			if o.ID < 0 {
				e.uvar(0) // tombstone
			} else {
				e.uvar(uint64(o.ID) + 1)
			}
		}
	} else {
		e.u8(0)
	}
}

// decodeEngine parses the engine-state section; ids must resolve in the
// snapshot's object registry (they are indices into it) or the state is
// corrupt.
func decodeEngine(d *dec, wantDims int, objs []ObjectState) (*core.EngineState, error) {
	dims := int(d.uvar())
	if d.fail {
		return nil, d.err()
	}
	if dims != wantDims {
		return nil, fmt.Errorf("%w: engine state has %d attribute dims, snapshot schema has %d", ErrCorrupt, dims, wantDims)
	}
	var missing error
	resolve := func(id int) object.Object {
		if id < 0 || id >= len(objs) {
			if !d.fail && missing == nil {
				missing = fmt.Errorf("%w: engine state references unknown object %d", ErrCorrupt, id)
			}
			return object.Object{}
		}
		return object.Object{ID: id, Attrs: objs[id].Attrs}
	}
	idList := func() []object.Object {
		n := d.length()
		if d.fail {
			return nil
		}
		out := make([]object.Object, n)
		for i := range out {
			out[i] = resolve(int(d.uvar()))
		}
		return out
	}
	lists := func() [][]object.Object {
		n := d.length()
		if d.fail {
			return nil
		}
		out := make([][]object.Object, n)
		for i := range out {
			out[i] = idList()
		}
		return out
	}
	st := &core.EngineState{}
	st.UserFronts = lists()
	st.ClusterFronts = lists()
	if d.u8() == 1 {
		st.UserBuffers = lists()
	}
	if d.u8() == 1 {
		st.ClusterBuffers = lists()
	}
	if d.u8() == 1 {
		st.HasRing = true
		st.RingSeen = int(d.uvar())
		n := d.length()
		if !d.fail {
			st.Ring = make([]object.Object, n)
			for i := range st.Ring {
				shifted := int(d.uvar())
				if shifted == 0 {
					st.Ring[i] = object.Object{ID: -1} // tombstone
					continue
				}
				st.Ring[i] = resolve(shifted - 1)
			}
		}
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	if missing != nil {
		return nil, missing
	}
	return st, nil
}
