//go:build !unix

package storage

import "os"

// lockDir is a no-op on platforms without flock semantics; the
// single-writer discipline is then on the operator.
func lockDir(dir string) (*os.File, error) { return nil, nil }
