package storage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/stats"
)

func obj(id int, attrs ...int32) object.Object { return object.Object{ID: id, Attrs: attrs} }

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Op: OpObject, Name: "o1", Values: []string{"a", "b"}},
		{Seq: 2, Op: OpObject, Name: "o2", Values: []string{"", "long value with spaces"}},
		{Seq: 3, Op: OpPreference, User: "u1", Attr: "brand", Better: "Apple", Worse: "Sony"},
	}
}

func lifecycleRecords() []Record {
	return []Record{
		{Seq: 4, Op: OpAddUser, Name: "carol", Prefs: []RecordPref{
			{Attr: "brand", Better: "Apple", Worse: "Sony"},
			{Attr: "size", Better: "small", Worse: "large"},
		}},
		{Seq: 5, Op: OpAddUser, Name: "dave"}, // no initial preferences
		{Seq: 6, Op: OpRetractPreference, User: "carol", Attr: "brand", Better: "Apple", Worse: "Sony"},
		{Seq: 7, Op: OpRemoveUser, User: "dave"},
		{Seq: 8, Op: OpRemoveObject, Name: "o1"},
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for _, rec := range append(sampleRecords(), lifecycleRecords()...) {
		got, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			t.Fatalf("decode(%+v): %v", rec, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	}
}

func TestRecordCodecRejectsDamage(t *testing.T) {
	payload := encodeRecord(sampleRecords()[0])
	for _, tc := range [][]byte{
		payload[:len(payload)-1],              // truncated
		append(payload[:0:0], 0xff),           // garbage op
		append(payload[:0:0], payload...)[:3], // mid-field cut
	} {
		if _, err := decodeRecord(tc); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decodeRecord(%x): got %v, want ErrCorrupt", tc, err)
		}
	}
	if _, err := decodeRecord(append(append([]byte{}, payload...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: want ErrCorrupt")
	}
}

func sampleSnapshot() *Snapshot {
	st := core.NewEngineState(2, 1)
	st.UserFronts[0] = []object.Object{obj(0, 1, 2), obj(3, 0, 0)}
	st.UserFronts[1] = []object.Object{obj(3, 0, 0)}
	st.ClusterFronts[0] = []object.Object{obj(0, 1, 2), obj(3, 0, 0)}
	st.EnsureClusterBuffers()
	st.ClusterBuffers[0] = []object.Object{obj(2, 1, 1), obj(3, 0, 0)}
	st.SetRing(7, []object.Object{obj(2, 1, 1), obj(3, 0, 0)})
	st.Ring = append(st.Ring, object.Object{ID: -1}) // a removed object's tombstone slot
	return &Snapshot{
		Algorithm: 1, Window: 2, Measure: 3, BranchCut: 0.55,
		ClusterCount: 0, Theta1: 500, Theta2: 0.5,
		BaseUsers: 2,
		Users: []UserState{
			{Name: "alice", Alive: true, Prefs: [][][2]int{{{0, 1}}, {{1, 2}, {0, 2}}}},
			{Name: "bob", Alive: false, Prefs: [][][2]int{{}, {}}},
			{Name: "carol", Alive: true, Prefs: [][][2]int{{}, {{0, 1}}}},
		},
		Clusters: [][]int{{0, 2}, {}},
		Domains:  [][]string{{"x", "y"}, {"p", "q", "r"}},
		Objects: []ObjectState{
			{Name: "o1", Alive: true, Attrs: []int32{1, 2}},
			{Name: "o2", Alive: false, Attrs: []int32{0, 0}},
			{Name: "o3", Alive: true, Attrs: []int32{1, 1}},
			{Name: "o4", Alive: true, Attrs: []int32{0, 0}},
		},
		Counters: stats.Counters{Comparisons: 10, FilterComparisons: 4, VerifyComparisons: 6, Delivered: 3, Processed: 4},
		Engine:   st,
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := UnmarshalSnapshot(want.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSnapshotCodecRejectsDamage(t *testing.T) {
	body := sampleSnapshot().Marshal()
	for cut := 0; cut < len(body); cut += 7 {
		if _, err := UnmarshalSnapshot(body[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
	if _, err := UnmarshalSnapshot(append(append([]byte{}, body...), 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: want ErrCorrupt")
	}
}

// stores runs a subtest against both implementations.
func stores(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("file", func(t *testing.T) {
		s, err := OpenFile(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
}

func replayAll(t *testing.T, s Store, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := s.Replay(after, func(rec Record) error { out = append(out, rec); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestStoreAppendReplay(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		recs := sampleRecords()
		if err := s.Append(recs...); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, s, 0); !reflect.DeepEqual(got, recs) {
			t.Fatalf("replay: got %+v, want %+v", got, recs)
		}
		if got := replayAll(t, s, 2); !reflect.DeepEqual(got, recs[2:]) {
			t.Fatalf("replay after 2: got %+v", got)
		}
	})
}

func TestStoreSnapshotLifecycle(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		if _, _, ok, err := s.LoadSnapshot(); err != nil || ok {
			t.Fatalf("empty store: ok=%v err=%v", ok, err)
		}
		if err := s.WriteSnapshot(5, []byte("five")); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteSnapshot(9, []byte("nine")); err != nil {
			t.Fatal(err)
		}
		seq, body, ok, err := s.LoadSnapshot()
		if err != nil || !ok || seq != 9 || string(body) != "nine" {
			t.Fatalf("got seq=%d body=%q ok=%v err=%v", seq, body, ok, err)
		}
		st, err := s.Stats()
		if err != nil || st.Snapshots != 2 || st.LastSnapshotSeq != 9 {
			t.Fatalf("stats %+v err=%v", st, err)
		}
	})
}

func TestStorePruneKeepsRecoverableHistory(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		if fs, ok := s.(*FileStore); ok {
			fs.SegmentBytes = 1 // force a fresh segment per append
		}
		var recs []Record
		for seq := uint64(1); seq <= 10; seq++ {
			rec := Record{Seq: seq, Op: OpObject, Name: "o", Values: []string{"v"}}
			recs = append(recs, rec)
			if err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		for _, seq := range []uint64{3, 6, 9} {
			if err := s.WriteSnapshot(seq, []byte{byte(seq)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Prune(); err != nil {
			t.Fatal(err)
		}
		st, err := s.Stats()
		if err != nil || st.Snapshots != keepSnapshots {
			t.Fatalf("after prune: stats %+v err=%v", st, err)
		}
		// Everything behind the OLDER retained snapshot (seq 6) must
		// still replay, so losing snapshot 9 is survivable.
		got := replayAll(t, s, 6)
		if !reflect.DeepEqual(got, recs[6:]) {
			t.Fatalf("replay after 6: got %+v, want %+v", got, recs[6:])
		}
	})
}

func TestStoreRejectsSequenceGap(t *testing.T) {
	stores(t, func(t *testing.T, s Store) {
		if err := s.Append(Record{Seq: 1, Op: OpObject, Name: "o1"}); err != nil {
			t.Fatal(err)
		}
		err := s.Append(Record{Seq: 3, Op: OpObject, Name: "o3"})
		if fs, ok := s.(*FileStore); ok {
			// The file store accepts the write (it cannot cheaply know) but
			// replay must expose the gap.
			if err != nil {
				t.Fatal(err)
			}
			fs.Close()
			if err := s.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("gap replay: got %v, want ErrCorrupt", err)
			}
			return
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mem gap append: got %v, want ErrCorrupt", err)
		}
	})
}

// segmentFiles returns WAL segment paths sorted by first seq.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	fs := &FileStore{dir: dir}
	seqs, err := fs.listSeqs("wal-", ".wal")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(seqs))
	for i, seq := range seqs {
		out[i] = filepath.Join(dir, segName(seq))
	}
	return out
}

func TestFileStoreToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}
	s.Close()
	segs := segmentFiles(t, dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last record's payload: a crash mid-write.
	if err := os.WriteFile(segs[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2, 0); !reflect.DeepEqual(got, recs[:2]) {
		t.Fatalf("torn tail replay: got %+v, want first two records", got)
	}
	// The next append (seq 3 again) starts a fresh segment; replay then
	// yields the healed log.
	if err := s2.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, s2, 0); !reflect.DeepEqual(got, recs) {
		t.Fatalf("healed replay: got %+v, want %+v", got, recs)
	}
}

func TestFileStoreDetectsInteriorDamage(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SegmentBytes = 1 // one record per segment
	recs := sampleRecords()
	for _, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs := segmentFiles(t, dir)
	if len(segs) != 3 {
		t.Fatalf("expected 3 segments, got %d", len(segs))
	}
	// Flip one CRC byte in the FIRST segment: the damage is interior
	// (later segments hold live records), so recovery must refuse.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderLen+4] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior CRC damage: got %v, want ErrCorrupt", err)
	}
}

func TestFileStoreFlippedTailCRCFallsBackCleanly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}
	s.Close()
	segs := segmentFiles(t, dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a byte inside the newest record
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2, 0); !reflect.DeepEqual(got, recs[:2]) {
		t.Fatalf("flipped tail: got %+v, want clean fallback to first two records", got)
	}
}

func TestFileStoreSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteSnapshot(4, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(8, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Deleting the newest snapshot falls back to the older one.
	if err := os.Remove(filepath.Join(dir, snapName(8))); err != nil {
		t.Fatal(err)
	}
	seq, body, ok, err := s.LoadSnapshot()
	if err != nil || !ok || seq != 4 || string(body) != "old" {
		t.Fatalf("fallback: seq=%d body=%q ok=%v err=%v", seq, body, ok, err)
	}
	// A corrupt newest snapshot also falls back.
	if err := s.WriteSnapshot(8, []byte("new")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(8))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if seq, _, ok, err = s.LoadSnapshot(); err != nil || !ok || seq != 4 {
		t.Fatalf("corrupt-newest fallback: seq=%d ok=%v err=%v", seq, ok, err)
	}
	// All snapshots corrupt: ErrCorrupt, not silent fresh start.
	old := filepath.Join(dir, snapName(4))
	data, err = os.ReadFile(old)
	if err != nil {
		t.Fatal(err)
	}
	data[snapHeaderLen] ^= 0xff
	if err := os.WriteFile(old, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.LoadSnapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all corrupt: got %v, want ErrCorrupt", err)
	}
}

func TestFileStoreRejectsFutureVersions(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteSnapshot(1, []byte("body")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[6] = 0xff // bump the header version
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.LoadSnapshot(); !errors.Is(err, ErrVersion) {
		t.Fatalf("snapshot version bump: got %v, want ErrVersion", err)
	}

	if err := s.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	segs := segmentFiles(t, dir)
	data, err = os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[6] = 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrVersion) {
		t.Fatalf("WAL version bump: got %v, want ErrVersion", err)
	}
}

// TestFileStoreToleratesSnapshotCoveredGap covers the power-loss case:
// appends are not fsynced, so a cut can drop a WAL tail that an fsynced
// snapshot already captured. After the next restart appends resume past
// the gap; replay from the snapshot must succeed, while replay from
// genesis (no snapshot covering the gap) must still flag corruption.
func TestFileStoreToleratesSnapshotCoveredGap(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Power loss: records 2 and 3 vanish from the OS buffer, but an
	// fsynced snapshot had captured state through seq 3.
	segs := segmentFiles(t, dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	cut := walHeaderLen + recFrameLen + len(encodeRecord(recs[0]))
	if err := os.WriteFile(segs[0], data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	// Restart: the monitor recovered from the snapshot (walSeq=3) and
	// appends seq 4 into a fresh segment.
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec4 := Record{Seq: 4, Op: OpObject, Name: "o4", Values: []string{"v"}}
	if err := s2.Append(rec4); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	// Second restart, again from the snapshot: the 2..3 gap is covered.
	s3, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	var got []Record
	if err := s3.Replay(3, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatalf("snapshot-covered gap: %v", err)
	}
	if !reflect.DeepEqual(got, []Record{rec4}) {
		t.Fatalf("replay after 3: got %+v", got)
	}
	// Without a snapshot covering the gap, the loss is real corruption.
	if err := s3.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("uncovered gap: got %v, want ErrCorrupt", err)
	}
}

// TestFileStoreDirectoryLock pins single-writer access: a second open
// of a held directory fails with ErrLocked until the first closes.
func TestFileStoreDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open: got %v, want ErrLocked", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	s2.Close()
}

// TestFileStoreInteriorDamageInNewestSegment pins that a damaged record
// with committed records after it IN THE SAME segment is corruption,
// never a silently shortened log.
func TestFileStoreInteriorDamageInNewestSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}
	s.Close()
	segs := segmentFiles(t, dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record: records 2 and 3 are
	// intact and committed behind it.
	data[walHeaderLen+recFrameLen] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior damage in newest segment: got %v, want ErrCorrupt", err)
	}
}

// TestFormatVersionSkew pins the v2→v3 bump: files written by any
// previous format version (v2's engine sections carry a dedup object
// table that v3 dropped; v1 predates lifecycle records) are intact
// bytes this build must refuse with ErrVersion — migrate or roll back,
// never silently misread.
func TestFormatVersionSkew(t *testing.T) {
	if FormatVersion != 3 {
		t.Fatalf("FormatVersion = %d; this test pins the v3 bump", FormatVersion)
	}
	for _, stale := range []byte{1, 2} {
		dir := t.TempDir()
		s, err := OpenFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(sampleRecords()[0]); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteSnapshot(1, sampleSnapshot().Marshal()); err != nil {
			t.Fatal(err)
		}
		s.Close()

		// Rewrite both headers to claim the stale format version.
		for _, name := range append(segmentFiles(t, dir), filepath.Join(dir, snapName(1))) {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			data[6], data[7] = stale, 0 // u16 LE version
			if err := os.WriteFile(name, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s2, err := OpenFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if err := s2.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrVersion) {
			t.Errorf("v%d WAL segment: got %v, want ErrVersion", stale, err)
		}
		if _, _, _, err := s2.LoadSnapshot(); !errors.Is(err, ErrVersion) {
			t.Errorf("v%d snapshot: got %v, want ErrVersion", stale, err)
		}
	}
}
