//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on <dir>/LOCK. The
// lock lives as long as the returned file's descriptor, so it releases
// on Close and — crucially for crash recovery — automatically when the
// process dies, kill -9 included; a stale LOCK file from a dead process
// never blocks a restart.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/LOCK", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}
