package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// On-disk layout inside the store directory (see docs/PERSISTENCE.md):
//
//	wal-<firstSeq:016x>.wal   WAL segments, named by their first record's seq
//	snap-<seq:016x>.snap      snapshots, named by the log position they cover
//
// A WAL segment starts with an 8-byte header — magic "PMWAL\x00" + u16
// little-endian format version — followed by records framed as
// [u32 payloadLen][u32 CRC32-IEEE(payload)][payload]. A snapshot file is
// a 24-byte header — magic "PMSNAP" + u16 version + u64 seq +
// u32 bodyLen + u32 CRC32-IEEE(body) — followed by the body.
//
// Appends never reopen an old segment: after a restart the next append
// starts a fresh segment, so a torn record at a pre-crash segment's tail
// stays physically last in its file and replay can tell honest
// crash-truncation (tolerated) from interior damage (ErrCorrupt, caught
// by the cross-segment sequence-continuity check).

const (
	walMagic  = "PMWAL\x00"
	snapMagic = "PMSNAP"

	walHeaderLen  = 8  // magic(6) + version(2)
	recFrameLen   = 8  // payloadLen(4) + crc(4)
	snapHeaderLen = 24 // magic(6) + version(2) + seq(8) + bodyLen(4) + crc(4)

	// maxRecordLen bounds a single record payload; a length field above
	// it is treated as tear/corruption rather than attempted.
	maxRecordLen = 64 << 20

	// DefaultSegmentBytes is the size at which Append rolls to a new
	// WAL segment.
	DefaultSegmentBytes = 4 << 20

	// keepSnapshots is how many snapshot generations Prune retains; the
	// WAL is pruned only below the oldest retained one, so losing the
	// newest snapshot still leaves a recoverable older snapshot + tail.
	keepSnapshots = 2
)

// FileStore is the file-backed Store. Mutating methods — Append,
// WriteSnapshot, Prune, Close — are single-writer (the Monitor holds
// its write lock around them); the read-only methods Replay and
// LoadSnapshot are stateless file scans that may run concurrently with
// each other (the changefeed serves many /wal streams under the
// monitor's read lock) but never with the mutators. Any future mutable
// read-path state (segment caches, cursors) must add its own
// synchronization. An internal mutex guards the append-side state for
// Stats readers.
type FileStore struct {
	dir string
	// SegmentBytes is the roll threshold for WAL segments. It may be set
	// between calls; the default is DefaultSegmentBytes.
	SegmentBytes int64

	mu       sync.Mutex
	seg      *os.File // active segment (nil until the first append)
	segBytes int64
	lock     *os.File // flock handle pinning single-writer access

	appendedRecords uint64
	appendedBytes   uint64
	lastAppendedSeq uint64
}

// OpenFile opens (creating if needed) a file store rooted at dir and
// takes an exclusive advisory lock on it: the WAL is single-writer, so
// a directory already held by a live process yields ErrLocked. The
// lock releases on Close and automatically when the process dies.
func OpenFile(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating store directory: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	return &FileStore{dir: dir, SegmentBytes: DefaultSegmentBytes, lock: lock}, nil
}

func segName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.wal", firstSeq) }
func snapName(seq uint64) string     { return fmt.Sprintf("snap-%016x.snap", seq) }

// parseSeq extracts the hex seq from a "prefix-<16hex>.suffix" name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSeqs returns the seqs of files matching prefix/suffix, ascending.
func (f *FileStore) listSeqs(prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: reading store directory: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Append writes the records as one contiguous byte run into the active
// segment, rolling to a new segment first if the active one is full (or
// none is open yet). Records of one call never split across segments.
func (f *FileStore) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seg == nil || f.segBytes >= f.SegmentBytes {
		if err := f.roll(recs[0].Seq); err != nil {
			return err
		}
	}
	var buf []byte
	for _, rec := range recs {
		payload := encodeRecord(rec)
		var frame [recFrameLen]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
		buf = append(buf, frame[:]...)
		buf = append(buf, payload...)
	}
	if _, err := f.seg.Write(buf); err != nil {
		return fmt.Errorf("storage: appending WAL records: %w", err)
	}
	f.segBytes += int64(len(buf))
	f.appendedRecords += uint64(len(recs))
	f.appendedBytes += uint64(len(buf))
	f.lastAppendedSeq = recs[len(recs)-1].Seq
	return nil
}

// roll syncs and closes the active segment and starts a new one whose
// name carries the first seq it will hold. Rolling onto an existing
// file truncates it: a same-named segment can only be the torn, empty
// remnant of a crash at the very first record (otherwise replay would
// have advanced past firstSeq and a later name would be chosen).
func (f *FileStore) roll(firstSeq uint64) error {
	if f.seg != nil {
		_ = f.seg.Sync()
		if err := f.seg.Close(); err != nil {
			return fmt.Errorf("storage: closing WAL segment: %w", err)
		}
		f.seg = nil
	}
	seg, err := os.OpenFile(filepath.Join(f.dir, segName(firstSeq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating WAL segment: %w", err)
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint16(hdr[6:], FormatVersion)
	if _, err := seg.Write(hdr[:]); err != nil {
		seg.Close()
		return fmt.Errorf("storage: writing WAL segment header: %w", err)
	}
	f.seg = seg
	f.segBytes = walHeaderLen
	return nil
}

// Replay streams records with Seq > afterSeq across all segments in
// order. Within and across segments, delivered seqs must be contiguous;
// a parse failure stops the current segment (a torn tail is legal), and
// the continuity check turns interior damage into ErrCorrupt: records
// lost in the middle of the log leave a gap the next segment exposes.
func (f *FileStore) Replay(afterSeq uint64, fn func(rec Record) error) error {
	segs, err := f.listSeqs("wal-", ".wal")
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	// Segments whose whole range precedes the snapshot floor (the next
	// segment starts at or below afterSeq+1) are never read: recovery
	// does not need them, so even damage inside them is irrelevant —
	// they are merely awaiting pruning.
	skip := 0
	for skip+1 < len(segs) && segs[skip+1] <= afterSeq+1 {
		skip++
	}
	segs = segs[skip:]
	// The oldest segment's name pins where the surviving log must start;
	// from there every parsed record must continue the sequence exactly.
	// A tear only ever swallows records that were re-appended into the
	// next segment (or never acknowledged), so a seq that jumps past
	// expect exposes interior damage — with one exception: appends are
	// not fsynced, so a power cut can drop a WAL tail that an fsynced
	// snapshot had already captured. A gap whose missing records all lie
	// at or below afterSeq (the snapshot the caller recovers from) lost
	// nothing recovery needs and is tolerated.
	expect := segs[0]
	for _, first := range segs {
		recs, err := f.readSegment(filepath.Join(f.dir, segName(first)))
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Seq != expect {
				if rec.Seq < expect || rec.Seq > afterSeq+1 {
					return fmt.Errorf("%w: WAL sequence gap: read record %d, expected %d", ErrCorrupt, rec.Seq, expect)
				}
				expect = rec.Seq
			}
			expect++
			if rec.Seq <= afterSeq {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// readSegment parses one segment. A record that fails to parse is
// tolerated as an honest crash tear only when it is the segment's
// physically last content — a torn write never has committed bytes
// after it. A bad record with data behind it is interior damage:
// silently stopping there would drop acknowledged records, so it is
// ErrCorrupt. A missing or short header means a segment that tore
// before its first byte landed — zero records. An alien magic number is
// corruption; an unknown version is ErrVersion.
func (f *FileStore) readSegment(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: reading WAL segment: %w", err)
	}
	if len(data) < walHeaderLen {
		return nil, nil
	}
	if string(data[:6]) != walMagic {
		return nil, fmt.Errorf("%w: %s: bad WAL magic", ErrCorrupt, filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint16(data[6:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: %s: WAL format version %d, this build reads %d", ErrVersion, filepath.Base(path), v, FormatVersion)
	}
	var recs []Record
	pos := walHeaderLen
	for pos+recFrameLen <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		crc := binary.LittleEndian.Uint32(data[pos+4:])
		if n > maxRecordLen || pos+recFrameLen+n > len(data) {
			break // length field or payload extends past EOF: a tear
		}
		end := pos + recFrameLen + n
		payload := data[pos+recFrameLen : end]
		bad := crc32.ChecksumIEEE(payload) != crc
		if !bad {
			rec, err := decodeRecord(payload)
			if err != nil {
				bad = true // CRC-valid garbage cannot really happen
			} else {
				recs = append(recs, rec)
				pos = end
				continue
			}
		}
		if end >= len(data) {
			break // the damaged record is the last content: a tear
		}
		return nil, fmt.Errorf("%w: %s: damaged WAL record at offset %d with %d committed bytes after it",
			ErrCorrupt, filepath.Base(path), pos, len(data)-end)
	}
	return recs, nil
}

// WriteSnapshot persists the body atomically: write + fsync a temp
// file, rename it into place, fsync the directory. A crash leaves
// either the previous snapshot set or the previous set plus this one.
func (f *FileStore) WriteSnapshot(seq uint64, body []byte) error {
	hdr := make([]byte, snapHeaderLen, snapHeaderLen+len(body))
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint16(hdr[6:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.ChecksumIEEE(body))
	data := append(hdr, body...)

	final := filepath.Join(f.dir, snapName(seq))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("storage: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: publishing snapshot: %w", err)
	}
	return syncDir(f.dir)
}

func writeFileSync(path string, data []byte) error {
	file, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best-effort; some platforms cannot sync directories
	}
	_ = d.Sync()
	return d.Close()
}

// LoadSnapshot returns the newest snapshot that passes validation,
// falling back to older ones past corruption. Only if snapshots exist
// but none is readable does it fail: ErrVersion if any was written by
// an incompatible format (the operator must migrate, not discard),
// ErrCorrupt otherwise.
func (f *FileStore) LoadSnapshot() (uint64, []byte, bool, error) {
	seqs, err := f.listSeqs("snap-", ".snap")
	if err != nil {
		return 0, nil, false, err
	}
	var firstErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		seq, body, err := f.readSnapshot(filepath.Join(f.dir, snapName(seqs[i])))
		if err == nil {
			return seq, body, true, nil
		}
		if firstErr == nil || (errors.Is(err, ErrVersion) && !errors.Is(firstErr, ErrVersion)) {
			firstErr = err
		}
	}
	if len(seqs) > 0 {
		return 0, nil, false, firstErr
	}
	return 0, nil, false, nil
}

// readSnapshot validates one snapshot file's header and body CRC.
func (f *FileStore) readSnapshot(path string) (uint64, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if len(data) < snapHeaderLen || string(data[:6]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: %s: bad snapshot header", ErrCorrupt, filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint16(data[6:8]); v != FormatVersion {
		return 0, nil, fmt.Errorf("%w: %s: snapshot format version %d, this build reads %d", ErrVersion, filepath.Base(path), v, FormatVersion)
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	n := int(binary.LittleEndian.Uint32(data[16:20]))
	crc := binary.LittleEndian.Uint32(data[20:24])
	if snapHeaderLen+n != len(data) {
		return 0, nil, fmt.Errorf("%w: %s: snapshot body length %d, file holds %d", ErrCorrupt, filepath.Base(path), n, len(data)-snapHeaderLen)
	}
	body := data[snapHeaderLen:]
	if crc32.ChecksumIEEE(body) != crc {
		return 0, nil, fmt.Errorf("%w: %s: snapshot body CRC mismatch", ErrCorrupt, filepath.Base(path))
	}
	return seq, body, nil
}

// Prune keeps the newest keepSnapshots snapshots and deletes WAL
// segments whose records all precede the oldest retained snapshot (a
// segment's coverage ends where the next segment begins; the active
// and newest segments are never deleted).
func (f *FileStore) Prune() error {
	snaps, err := f.listSeqs("snap-", ".snap")
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return nil
	}
	for len(snaps) > keepSnapshots {
		if err := os.Remove(filepath.Join(f.dir, snapName(snaps[0]))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("storage: pruning snapshot: %w", err)
		}
		snaps = snaps[1:]
	}
	floor := snaps[0] // recovery never needs records at or below this
	segs, err := f.listSeqs("wal-", ".wal")
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] > floor+1 {
			break // this segment still holds records above the floor
		}
		if err := os.Remove(filepath.Join(f.dir, segName(segs[i]))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("storage: pruning WAL segment: %w", err)
		}
	}
	return nil
}

// Stats scans the directory for the store's current footprint.
func (f *FileStore) Stats() (Stats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{
		Dir:             f.dir,
		AppendedRecords: f.appendedRecords,
		AppendedBytes:   f.appendedBytes,
		LastAppendedSeq: f.lastAppendedSeq,
	}
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return Stats{}, fmt.Errorf("storage: reading store directory: %w", err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		if _, ok := parseSeq(e.Name(), "wal-", ".wal"); ok {
			st.Segments++
			st.WALBytes += info.Size()
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			st.Snapshots++
			if seq >= st.LastSnapshotSeq {
				st.LastSnapshotSeq = seq
				st.SnapshotBytes = info.Size()
			}
		}
	}
	return st, nil
}

// metaName maps a meta key to its file name. Keys are restricted to
// filename-safe tokens so the name cannot escape the store directory.
func metaName(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("storage: empty meta key")
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return "", fmt.Errorf("storage: meta key %q: only [a-z0-9_-] allowed", key)
		}
	}
	return "meta-" + key, nil
}

// PutMeta durably replaces a coordination record with the same
// atomic-rename discipline as snapshots: a crash leaves either the old
// value or the new one, never a torn mix.
func (f *FileStore) PutMeta(key string, value []byte) error {
	name, err := metaName(key)
	if err != nil {
		return err
	}
	final := filepath.Join(f.dir, name)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, value); err != nil {
		return fmt.Errorf("storage: writing meta %q: %w", key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: publishing meta %q: %w", key, err)
	}
	return syncDir(f.dir)
}

// GetMeta reads a coordination record; ok is false when it was never
// written.
func (f *FileStore) GetMeta(key string) ([]byte, bool, error) {
	name, err := metaName(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("storage: reading meta %q: %w", key, err)
	}
	return data, true, nil
}

// Close syncs and closes the active segment and releases the
// directory lock.
func (f *FileStore) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var err error
	if f.seg != nil {
		_ = f.seg.Sync()
		err = f.seg.Close()
		f.seg = nil
	}
	if f.lock != nil {
		f.lock.Close()
		f.lock = nil
	}
	return err
}

var _ Store = (*FileStore)(nil)
var _ MetaStore = (*FileStore)(nil)
var _ io.Closer = (*FileStore)(nil)
