// Package storage is the durability subsystem behind the public
// Monitor: a pluggable Store interface (append WAL records, write/load
// snapshots, prune obsolete files) with a file-backed implementation
// (length-prefixed, CRC-checked binary WAL segments plus atomically
// renamed snapshot files) and an in-memory implementation for tests.
//
// The paper (Sultana & Li, EDBT 2018) treats the monitor as an
// in-memory streaming operator; persistence is an engineering extension
// for running it as a long-lived service. The design follows from the
// paper's own structure:
//
//   - The engines are deterministic functions of the ingestion history
//     (Algs. 1–5 mutate frontiers in a fixed scan order), so a
//     write-ahead log of the raw inputs — objects (Sec. 3) and online
//     preference-tuple additions — is a complete recovery story on its
//     own: replaying the log through a freshly built engine reproduces
//     every frontier, buffer, and work counter exactly.
//   - Replay cost grows with the stream, so a snapshot captures the
//     engine-facing state at one log position: the interned attribute
//     domains (Sec. 3's categorical values), the object name table, the
//     per-user and per-cluster Pareto frontiers P_c / P_U (Secs. 4–6),
//     the sliding-window ring and Pareto frontier buffers PB (Sec. 7),
//     the cluster membership (Sec. 5, verified against the re-clustered
//     community on restore), the applied online preference updates, and
//     the comparison counters (Sec. 8's measurements).
//   - Recovery loads the newest readable snapshot and replays only the
//     WAL tail behind it. Restored state is byte-for-byte equivalent to
//     an uninterrupted run: frontiers keep their scan order, so even
//     the comparison counts of future arrivals are unchanged.
//
// Snapshot state is keyed by the shardable units (users and clusters),
// never by worker shards, so a monitor may be restored under a different
// WithWorkers setting than it was snapshotted under.
//
// See docs/PERSISTENCE.md for the exact on-disk byte layout, the
// corruption-handling policy, and an operations walkthrough.
package storage
