package storage

import (
	"errors"

	"repro/internal/core"
	"repro/internal/stats"
)

// FormatVersion is the on-disk format version written into every WAL
// segment header and snapshot header. Readers reject other versions with
// ErrVersion; see docs/PERSISTENCE.md for the version-bump policy.
//
// Version history:
//
//	1  PR 3: objects + online preference additions; snapshots pin a
//	   fixed community and carry object names only.
//	2  v3 lifecycle API: four new record types (user add/remove,
//	   preference retraction, object removal); snapshots become
//	   self-contained — full user table with asserted preference tuples
//	   and alive flags, full object table with attribute values and
//	   alive flags — so recovery can rebuild an evolved community.
//	3  interned-id engine state: the engine section's per-snapshot
//	   object dedup table is gone; frontier, buffer, and ring entries
//	   are bare object ids resolved against the snapshot's object
//	   table (ids are dense indices into it).
const FormatVersion = 3

var (
	// ErrCorrupt reports on-disk state that cannot be trusted: a bad
	// magic number, a CRC mismatch outside the torn tail of the newest
	// WAL segment, a sequence gap between segments, or a snapshot whose
	// body does not decode. Recovery stops rather than guessing.
	ErrCorrupt = errors.New("storage: corrupt state")

	// ErrVersion reports a WAL segment or snapshot written by an
	// incompatible format version. Unlike corruption, the bytes are
	// intact — an older or newer build wrote them — so the operator must
	// migrate or roll back rather than discard.
	ErrVersion = errors.New("storage: unsupported format version")

	// ErrLocked reports a store directory already held by another live
	// process. The WAL is single-writer: a second writer would truncate
	// segments out from under the first, so OpenFile refuses instead.
	ErrLocked = errors.New("storage: data directory locked by another process")
)

// Op discriminates WAL record types.
type Op uint8

const (
	// OpObject logs one object ingestion (Monitor.Add, or one element of
	// Monitor.AddBatch).
	OpObject Op = 1
	// OpPreference logs one online preference-tuple addition
	// (Monitor.AddPreference).
	OpPreference Op = 2
	// OpAddUser logs a user joining the community with their initial
	// preference tuples (Monitor.AddUser).
	OpAddUser Op = 3
	// OpRemoveUser logs a user leaving the community
	// (Monitor.RemoveUser).
	OpRemoveUser Op = 4
	// OpRetractPreference logs an online preference-tuple retraction
	// (Monitor.RetractPreference).
	OpRetractPreference Op = 5
	// OpRemoveObject logs an object deletion (Monitor.RemoveObject).
	OpRemoveObject Op = 6
)

// RecordPref is one preference tuple inside an OpAddUser record.
type RecordPref struct {
	Attr   string
	Better string
	Worse  string
}

// Record is one write-ahead-log entry: the raw input of a single
// monitor mutation, sufficient to replay it through a fresh engine.
// Fields beyond Seq and Op are op-specific; unused ones stay zero.
type Record struct {
	// Seq is the record's position in the global log, starting at 1 and
	// increasing by exactly 1 per record with no gaps.
	Seq uint64
	// Op selects which of the field groups below is meaningful.
	Op Op

	// Name and Values describe an OpObject record: the object's unique
	// name and its attribute values in schema order. OpRemoveObject uses
	// Name alone.
	Name   string
	Values []string

	// User, Attr, Better and Worse describe an OpPreference or
	// OpRetractPreference record: the user now also / no longer prefers
	// value Better over value Worse on attribute Attr. OpRemoveUser uses
	// User alone.
	User   string
	Attr   string
	Better string
	Worse  string

	// Prefs lists an OpAddUser record's initial preference tuples (Name
	// carries the user name).
	Prefs []RecordPref
}

// Stats describes a store's footprint for observability endpoints and
// the recovery experiment.
type Stats struct {
	// Dir is the backing directory ("" for the in-memory store).
	Dir string `json:"dir"`
	// Segments and WALBytes count the live WAL segments and their total
	// size; Snapshots and SnapshotBytes count the retained snapshot
	// files and the newest snapshot's size.
	Segments      int   `json:"segments"`
	WALBytes      int64 `json:"wal_bytes"`
	Snapshots     int   `json:"snapshots"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// LastSnapshotSeq is the newest snapshot's log position (0 if none).
	LastSnapshotSeq uint64 `json:"last_snapshot_seq"`
	// LastAppendedSeq is the newest log position appended by this
	// process (0 before the first append). Monitor.StorageStats
	// overrides it with the authoritative value, which also covers
	// records recovered from prior incarnations; replication dashboards
	// compare it against follower applied-seq watermarks.
	LastAppendedSeq uint64 `json:"last_appended_seq"`
	// AppendedRecords and AppendedBytes count WAL appends performed by
	// this process (not prior incarnations); the recovery experiment
	// derives write amplification from them.
	AppendedRecords uint64 `json:"appended_records"`
	AppendedBytes   uint64 `json:"appended_bytes"`
}

// Store is the narrow persistence interface the Monitor writes through.
// Implementations must serialize calls internally or document that the
// caller does (the Monitor holds its write lock around every call).
type Store interface {
	// Append adds records to the WAL in order. Seqs must continue the
	// log contiguously; records of one call are written as one unit, so
	// a crash can tear at most the call's tail, never interleave it.
	Append(recs ...Record) error
	// Replay streams every record with Seq > afterSeq in log order,
	// stopping early if fn returns an error (which it propagates). A
	// torn tail on the newest segment is silently treated as the end of
	// the log; damage anywhere else is ErrCorrupt.
	Replay(afterSeq uint64, fn func(rec Record) error) error
	// WriteSnapshot durably persists the encoded monitor state covering
	// the log through seq. The write is atomic: a crash leaves either
	// the complete snapshot or none, never a partial one.
	WriteSnapshot(seq uint64, body []byte) error
	// LoadSnapshot returns the newest readable snapshot. ok is false if
	// no snapshot exists; an unreadable newest snapshot falls back to
	// the next older one. All-corrupt is ErrCorrupt, a snapshot from an
	// incompatible format is ErrVersion.
	LoadSnapshot() (seq uint64, body []byte, ok bool, err error)
	// Prune drops WAL segments and snapshots no longer needed for
	// recovery, always retaining enough history to recover from the
	// previous snapshot should the newest one be lost.
	Prune() error
	// Stats reports the store's current footprint.
	Stats() (Stats, error)
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// MetaStore is the optional coordination-record extension of Store:
// small durable key/value blobs that live beside the WAL but outside
// it — the fleet ring a partition has accepted, the router write
// lease. Meta records are not monitor state (they never replay) and
// not covered by snapshots; each Put replaces the key's value
// atomically. Both shipped stores implement it; custom backends that
// do not are simply unable to host ring/lease state durably (the
// monitor falls back to process-local memory).
type MetaStore interface {
	// PutMeta durably replaces key's value. Keys must be short
	// filename-safe tokens ([a-z0-9_-]).
	PutMeta(key string, value []byte) error
	// GetMeta returns key's current value; ok is false if the key was
	// never written.
	GetMeta(key string) ([]byte, bool, error)
}

// UserState is one user slot of a snapshot's community table: slots are
// construction-order (removed users stay in place, tombstoned, so user
// indices baked into the engine state stay stable).
type UserState struct {
	Name string
	// Alive is false for removed users; their Prefs are empty and their
	// engine-state slots blank.
	Alive bool
	// Prefs[d] lists attribute d's asserted preference tuples as
	// (better, worse) value-id pairs into Domains[d], in assertion
	// order. Re-asserting them in order reproduces both the closure and
	// the retractable base.
	Prefs [][][2]int
}

// ObjectState is one object slot of a snapshot's object table, in id
// (arrival) order. Attribute values ride along so the alive objects can
// serve as mend candidates after future retractions and removals.
type ObjectState struct {
	Name  string
	Alive bool
	Attrs []int32
}

// Snapshot is the complete durable state of a Monitor at one log
// position, independent of the worker-shard layout. Since format
// version 2 it is self-contained: the community (users, preferences,
// clusters) and the object registry are stored in full, so recovery
// rebuilds an evolved monitor without replaying its lifecycle history.
// Marshal/Unmarshal define the byte encoding (see docs/PERSISTENCE.md).
type Snapshot struct {
	// Configuration fingerprint: restore refuses state written under a
	// semantically different engine configuration.
	Algorithm    uint8
	Window       int
	Measure      uint8
	BranchCut    float64
	ClusterCount int
	Theta1       int
	Theta2       float64

	// BaseUsers is how many leading user slots came from the
	// construction-time community; recovery pins the caller's community
	// against exactly those.
	BaseUsers int
	// Users is the full community table in construction order.
	Users []UserState
	// Clusters holds member user indices per cluster, in cluster order
	// (empty for Baseline; a memberless entry is a dormant cluster kept
	// as a placeholder so cluster indices stay stable).
	Clusters [][]int
	// Domains holds each attribute's interned values in id order, so
	// restored value ids match the ones baked into frontier objects.
	Domains [][]string
	// Objects is the full object registry in id order.
	Objects []ObjectState
	// Counters is the work accounting at the snapshot position.
	Counters stats.Counters
	// Engine is the engine-facing state: frontiers in scan order,
	// window ring, and Pareto frontier buffers.
	Engine *core.EngineState
}
