package partition

import (
	"errors"
	"fmt"
	"strings"
)

// ErrPartitionDown marks a partition that could not be reached — or
// would not become ready — within the caller's retry budget. Every
// *PartitionError produced by transport-level failure wraps it, so
// callers dispatch with errors.Is(err, ErrPartitionDown).
var ErrPartitionDown = errors.New("partition: partition down")

// ErrRingVersion marks a write the fleet rejected because the router's
// ring version disagrees with the partition's installed one. The
// Router handles it internally (refetch /ring, retry); it escapes only
// when the refetch loop cannot converge — a fleet actively rebalanced
// by someone else faster than this router can catch up.
var ErrRingVersion = errors.New("partition: ring version mismatch")

// ErrNotLeaseHolder marks a mutation refused because another router
// holds the fleet's write lease. The standby keeps renewing; it takes
// over the moment the holder releases or its TTL lapses.
var ErrNotLeaseHolder = errors.New("partition: write lease held by another router")

// RingVersionError is the typed form of a ring-version 409: the
// partition's installed version rides along so the router knows
// whether to refetch (partition is ahead) or push (partition is
// behind). It unwraps to ErrRingVersion and is deliberately NOT
// retryable-as-is — retrying without refreshing the ring would 409
// forever.
type RingVersionError struct {
	// Have is the version the partition has installed.
	Have uint64
	// Msg is the server's error message.
	Msg string
}

func (e *RingVersionError) Error() string {
	return fmt.Sprintf("%v (partition has %d): %s", ErrRingVersion, e.Have, e.Msg)
}

func (e *RingVersionError) Unwrap() error { return ErrRingVersion }

// PartitionError locates one partition's failure inside a fleet call.
type PartitionError struct {
	// Partition is the plan index; URL the partition's base URL.
	Partition int
	URL       string
	// Err is the underlying failure: a *StatusError for an HTTP-level
	// rejection, or a transport error wrapping ErrPartitionDown.
	Err error
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("partition %d (%s): %v", e.Partition, e.URL, e.Err)
}

func (e *PartitionError) Unwrap() error { return e.Err }

// RouteError aggregates the per-partition failures of one fleet
// operation. A fan-out that partially succeeded still returns a
// RouteError: the fleet may now be inconsistent (some partitions hold
// the mutation, some do not) and the caller must retry the operation —
// partitions that already applied it answer the retry as a duplicate,
// which the Router resolves (see router.go) — or take the partition
// down for repair. See the failure playbook in docs/PARTITIONING.md.
type RouteError struct {
	// Op names the failed operation ("AddBatch", "RemoveObject", ...).
	Op string
	// Failures holds one entry per failed partition, in plan order.
	Failures []*PartitionError
}

func (e *RouteError) Error() string {
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = f.Error()
	}
	return fmt.Sprintf("partition: %s failed on %d partition(s): %s", e.Op, len(e.Failures), strings.Join(parts, "; "))
}

// Unwrap exposes every partition failure to errors.Is / errors.As.
func (e *RouteError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// StatusError is an HTTP-level rejection from a partition: the status
// code and the decoded error message. 4xx statuses are authoritative
// (the partition is healthy and said no); the Router retries only
// transport failures and 5xx/503 responses.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Msg)
}

// retryable reports whether an attempt error may succeed on a later
// attempt: transport failures (connection refused, reset, timeout) and
// 5xx responses (a partition mid-shutdown or mid-recovery) are
// retryable; 4xx responses are final.
func retryable(err error) bool {
	var rv *RingVersionError
	if errors.As(err, &rv) {
		return false // needs a ring refresh first, not a blind retry
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return true // transport-level: the partition may come back
}
