package partition_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	paretomon "repro"
	"repro/internal/partition"
	"repro/internal/server"
)

// TestRingValidation covers the Ring value type: construction errors,
// pin-versus-plan ownership, and the wire roundtrip.
func TestRingValidation(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	if _, err := partition.NewRing(0, 3, 0, urls, nil); err == nil {
		t.Error("version 0 accepted; it is reserved for legacy mode")
	}
	if _, err := partition.NewRing(1, 4, 0, urls, nil); err == nil {
		t.Error("parts > len(urls) accepted")
	}
	if _, err := partition.NewRing(1, 0, 0, urls, nil); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := partition.NewRing(1, 3, 0, urls, map[string]int{"u1": 3}); err == nil {
		t.Error("pin beyond the URL list accepted")
	}

	rg, err := partition.NewRing(7, 2, 0, urls, map[string]int{"u1": 2})
	if err != nil {
		t.Fatal(err)
	}
	// The pinned user resolves to the pin (a retiring partition beyond
	// Parts is legal), everyone else to the plan — and PlanOwner ignores
	// the pin.
	if got := rg.Owner("u1"); got != 2 {
		t.Errorf("pinned owner = %d, want 2", got)
	}
	if got := rg.PlanOwner("u1"); got < 0 || got >= 2 {
		t.Errorf("plan owner = %d, want a plan partition", got)
	}
	for _, u := range []string{"u2", "u3", "u4"} {
		if got := rg.Owner(u); got != rg.PlanOwner(u) {
			t.Errorf("unpinned %s: owner %d != plan owner %d", u, got, rg.PlanOwner(u))
		}
	}

	back, err := partition.DecodeRing(rg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != rg.Version || back.Parts != rg.Parts || back.VNodes != rg.VNodes ||
		!reflect.DeepEqual(back.URLs, rg.URLs) || !reflect.DeepEqual(back.Moves, rg.Moves) {
		t.Errorf("roundtrip mangled the ring: %+v vs %+v", back, rg)
	}
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		if back.Owner(u) != rg.Owner(u) {
			t.Errorf("roundtrip changed owner(%s): %d vs %d", u, back.Owner(u), rg.Owner(u))
		}
	}
}

// pushRing installs rg on a partition out-of-band, simulating another
// router's commit this Router has not heard about.
func pushRing(t *testing.T, url string, rg *partition.Ring) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/ring", bytes.NewReader(rg.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pushing ring v%d to %s: status %d", rg.Version, url, resp.StatusCode)
	}
}

// bumpRing crafts the fleet ring's successor (same topology, version+1)
// and installs it on every partition behind the Router's back.
func bumpRing(t *testing.T, f *fleet) *partition.Ring {
	t.Helper()
	cur := f.router.Ring()
	if cur == nil {
		t.Fatal("no ring installed; bootstrap first")
	}
	next, err := partition.NewRing(cur.Version+1, cur.Parts, cur.VNodes, cur.URLs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, hs := range f.https {
		pushRing(t, hs.URL, next)
	}
	return next
}

// TestRingVersionRefetchRetry: every mutating path must survive another
// router committing a newer ring — the partition's 409 carries the
// installed version, the Router refetches and retries. Covered paths:
// the fan-out batch (including the duplicate-batch probe), the
// owner-routed op, and a cold router that has no ring at all.
func TestRingVersionRefetchRetry(t *testing.T) {
	com := testCommunity(t, 12)
	f := startFleet(t, com, 2)
	defer f.close()

	// Bootstrap ring v1 (a same-topology rebalance installs it).
	if _, err := f.router.Rebalance(context.Background(), fleetURLs(f), partition.RebalanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if rg := f.router.Ring(); rg == nil || rg.Version != 1 {
		t.Fatalf("bootstrap ring %+v, want version 1", f.router.Ring())
	}

	// Fan-out heal: the fleet moves to v2 behind the Router's back; its
	// next batch is rejected 409 by every partition, refetched, retried.
	bumpRing(t, f)
	objs := stream(10)
	want, err1 := f.ref.AddBatch(objs)
	got, err2 := f.router.AddBatch(objs)
	if err1 != nil || err2 != nil {
		t.Fatalf("batch through stale router: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-heal deliveries differ:\nreference %v\nrouter    %v", want, got)
	}
	if rg := f.router.Ring(); rg.Version != 2 {
		t.Errorf("router ring = v%d after heal, want 2", rg.Version)
	}

	// Owner-op heal: same dance on the single-owner path.
	bumpRing(t, f)
	prefs := []paretomon.Preference{{Attr: "a", Better: "v1", Worse: "v0"}}
	if err := f.ref.AddUser("u90", prefs); err != nil {
		t.Fatal(err)
	}
	if err := f.router.AddUser("u90", prefs); err != nil {
		t.Fatalf("AddUser through stale router: %v", err)
	}
	if rg := f.router.Ring(); rg.Version != 3 {
		t.Errorf("router ring = v%d after owner-op heal, want 3", rg.Version)
	}

	// Cold-router heal: a fresh router sends NO version header, which a
	// ringed partition rejects just like a stale one. Its first write
	// adopts v3 and lands. Re-sending the batch the fleet already holds
	// also exercises the duplicate probe: the 4xx duplicate-name
	// rejection resolves via GET /targets reconstruction.
	rtB, err := partition.New(partition.Config{
		URLs:          fleetURLs(f),
		RetryBudget:   5 * time.Second,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rtB.Close()
	redo, err := rtB.AddBatch(objs)
	if err != nil {
		t.Fatalf("duplicate batch through cold router: %v", err)
	}
	for _, d := range redo {
		wantUsers, err := f.ref.TargetsOf(d.Object)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantUsers, d.Users) {
			t.Errorf("probe-reconstructed delivery(%s): %v, want current targets %v", d.Object, d.Users, wantUsers)
		}
	}
	// The duplicate never needed the write path (the probe is a read, and
	// reads are not ring-gated), so the cold router is STILL ringless —
	// only a genuinely new write forces the headerless 409 and the heal.
	if rg := rtB.Ring(); rg != nil {
		t.Errorf("cold router adopted ring %+v from a read-only resolution", rg)
	}
	if err := f.ref.AddUser("u91", prefs); err != nil {
		t.Fatal(err)
	}
	if err := rtB.AddUser("u91", prefs); err != nil {
		t.Fatalf("AddUser through cold router: %v", err)
	}
	if rg := rtB.Ring(); rg == nil || rg.Version != 3 {
		t.Errorf("cold router ring = %+v after headerless heal, want version 3", rtB.Ring())
	}
	assertIdentical(t, f, 10)
}

// fleetURLs lists the fleet's partition base URLs.
func fleetURLs(f *fleet) []string {
	urls := make([]string, len(f.https))
	for i, hs := range f.https {
		urls[i] = hs.URL
	}
	return urls
}

// TestRouterLeaseMutualExclusion: with Config.RouterID set, mutations
// acquire the fleet write lease from partition 0. A second router is
// fenced out until the holder releases (Close) or its TTL lapses, and
// every handover bumps the fencing epoch.
func TestRouterLeaseMutualExclusion(t *testing.T) {
	com := testCommunity(t, 12)
	f := startFleet(t, com, 2)
	defer f.close()

	const ttl = 250 * time.Millisecond
	mk := func(id string) *partition.Router {
		t.Helper()
		rt, err := partition.New(partition.Config{
			URLs:          fleetURLs(f),
			RetryBudget:   2 * time.Second,
			RetryInterval: 5 * time.Millisecond,
			RouterID:      id,
			LeaseTTL:      ttl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	ra, rb, rc := mk("ra"), mk("rb"), mk("rc")
	defer rb.Close()
	defer rc.Close()

	prefs := []paretomon.Preference{{Attr: "a", Better: "v1", Worse: "v0"}}
	if err := ra.AddUser("u80", prefs); err != nil {
		t.Fatalf("first writer blocked: %v", err)
	}
	if ra.LeaseEpoch() == 0 {
		t.Fatal("holder reports epoch 0")
	}
	if err := rb.AddUser("u81", prefs); !errors.Is(err, partition.ErrNotLeaseHolder) {
		t.Fatalf("standby write = %v, want ErrNotLeaseHolder", err)
	}

	// Clean handover: Close releases the lease and the standby takes it.
	if err := ra.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rb.AddUser("u81", prefs); err != nil {
		t.Fatalf("standby after release: %v", err)
	}
	epochB := rb.LeaseEpoch()
	if epochB == 0 {
		t.Fatal("new holder reports epoch 0")
	}
	if err := rc.AddUser("u82", prefs); !errors.Is(err, partition.ErrNotLeaseHolder) {
		t.Fatalf("third router while lease live = %v, want ErrNotLeaseHolder", err)
	}

	// Crash handover: the holder goes silent (no renewal) and the TTL
	// judges it dead — partition 0's clock, not the standby's.
	time.Sleep(ttl + 50*time.Millisecond)
	if err := rc.AddUser("u82", prefs); err != nil {
		t.Fatalf("takeover after TTL expiry: %v", err)
	}
	if rc.LeaseEpoch() <= epochB {
		t.Errorf("takeover epoch %d, want > %d (fencing must advance)", rc.LeaseEpoch(), epochB)
	}
}

// TestRouterRetryBudgetPerPartition: one partition flapping must cost
// one retry budget, not one per healthy partition — budgets are
// per-partition and concurrent. The healthy partitions land the batch
// on the first attempt, the down one exhausts its own budget, and the
// re-issue after recovery converges via the duplicate probe.
func TestRouterRetryBudgetPerPartition(t *testing.T) {
	com := testCommunity(t, 12)
	plan, err := partition.NewPlan(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := paretomon.NewMonitor(com, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	var healthy atomic.Bool
	mons := make([]*paretomon.Monitor, 3)
	urls := make([]string, 3)
	for i := 0; i < 3; i++ {
		sub := com.Subset(func(name string) bool { return plan.Owner(name) == i })
		if sub.Len() == 0 {
			t.Fatalf("partition %d owns no users", i)
		}
		mon, err := paretomon.NewMonitor(sub, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
		if err != nil {
			t.Fatal(err)
		}
		defer mon.Close()
		mons[i] = mon
		h := http.Handler(server.New(mon))
		if i == 2 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if !healthy.Load() {
					http.Error(w, "flapping", http.StatusServiceUnavailable)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		hs := httptest.NewServer(h)
		defer hs.Close()
		urls[i] = hs.URL
	}

	const budget = 500 * time.Millisecond
	rt, err := partition.New(partition.Config{
		URLs:          urls,
		RetryBudget:   budget,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	objs := stream(6)
	if _, err := ref.AddBatch(objs); err != nil {
		t.Fatal(err)
	}
	startT := time.Now()
	_, err = rt.AddBatch(objs)
	elapsed := time.Since(startT)
	if !errors.Is(err, partition.ErrPartitionDown) {
		t.Fatalf("batch with partition 2 down = %v, want ErrPartitionDown", err)
	}
	var re *partition.RouteError
	if !errors.As(err, &re) {
		t.Fatalf("error %T, want *RouteError", err)
	}
	if len(re.Failures) != 1 || re.Failures[0].Partition != 2 {
		t.Fatalf("failures %v, want exactly partition 2", re.Failures)
	}
	// The regression gate: were budgets shared or sequential, the two
	// healthy partitions' work would stack onto the flapper's clock.
	if elapsed > 3*budget {
		t.Errorf("fan-out with one down partition took %v, want ≈ one budget (%v)", elapsed, budget)
	}
	// The healthy partitions hold the batch despite the fleet error.
	for i := 0; i < 2; i++ {
		if _, err := mons[i].TargetsOf("o1"); err != nil {
			t.Errorf("healthy partition %d does not hold o1: %v", i, err)
		}
	}

	// Recovery: the same batch re-issued lands everywhere — duplicates
	// on the healthy partitions resolve via the applied-prefix probe —
	// and the fleet is identical to the reference.
	healthy.Store(true)
	if _, err := rt.AddBatch(objs); err != nil {
		t.Fatalf("re-issue after recovery: %v", err)
	}
	for _, u := range ref.Users() {
		wantF, err1 := ref.Frontier(u)
		gotF, err2 := rt.Frontier(u)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(wantF, gotF) {
			t.Fatalf("frontier(%s): reference %v (%v), router %v (%v)", u, wantF, err1, gotF, err2)
		}
	}
	for i := 1; i <= len(objs); i++ {
		name := fmt.Sprintf("o%d", i)
		wantT, err1 := ref.TargetsOf(name)
		gotT, err2 := rt.TargetsOf(name)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(wantT, gotT) {
			t.Fatalf("targets(%s): reference %v (%v), router %v (%v)", name, wantT, err1, gotT, err2)
		}
	}
}
