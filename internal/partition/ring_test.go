package partition_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	paretomon "repro"
	"repro/internal/partition"
	"repro/internal/server"
)

// TestRingValidation covers the Ring value type: construction errors,
// pin-versus-plan ownership, and the wire roundtrip.
func TestRingValidation(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	if _, err := partition.NewRing(0, 3, 0, urls, nil); err == nil {
		t.Error("version 0 accepted; it is reserved for legacy mode")
	}
	if _, err := partition.NewRing(1, 4, 0, urls, nil); err == nil {
		t.Error("parts > len(urls) accepted")
	}
	if _, err := partition.NewRing(1, 0, 0, urls, nil); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := partition.NewRing(1, 3, 0, urls, map[string]int{"u1": 3}); err == nil {
		t.Error("pin beyond the URL list accepted")
	}

	rg, err := partition.NewRing(7, 2, 0, urls, map[string]int{"u1": 2})
	if err != nil {
		t.Fatal(err)
	}
	// The pinned user resolves to the pin (a retiring partition beyond
	// Parts is legal), everyone else to the plan — and PlanOwner ignores
	// the pin.
	if got := rg.Owner("u1"); got != 2 {
		t.Errorf("pinned owner = %d, want 2", got)
	}
	if got := rg.PlanOwner("u1"); got < 0 || got >= 2 {
		t.Errorf("plan owner = %d, want a plan partition", got)
	}
	for _, u := range []string{"u2", "u3", "u4"} {
		if got := rg.Owner(u); got != rg.PlanOwner(u) {
			t.Errorf("unpinned %s: owner %d != plan owner %d", u, got, rg.PlanOwner(u))
		}
	}

	back, err := partition.DecodeRing(rg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != rg.Version || back.Parts != rg.Parts || back.VNodes != rg.VNodes ||
		!reflect.DeepEqual(back.URLs, rg.URLs) || !reflect.DeepEqual(back.Moves, rg.Moves) {
		t.Errorf("roundtrip mangled the ring: %+v vs %+v", back, rg)
	}
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		if back.Owner(u) != rg.Owner(u) {
			t.Errorf("roundtrip changed owner(%s): %d vs %d", u, back.Owner(u), rg.Owner(u))
		}
	}
}

// pushRing installs rg on a partition out-of-band, simulating another
// router's commit this Router has not heard about.
func pushRing(t *testing.T, url string, rg *partition.Ring) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/ring", bytes.NewReader(rg.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pushing ring v%d to %s: status %d", rg.Version, url, resp.StatusCode)
	}
}

// bumpRing crafts the fleet ring's successor (same topology, version+1)
// and installs it on every partition behind the Router's back.
func bumpRing(t *testing.T, f *fleet) *partition.Ring {
	t.Helper()
	cur := f.router.Ring()
	if cur == nil {
		t.Fatal("no ring installed; bootstrap first")
	}
	next, err := partition.NewRing(cur.Version+1, cur.Parts, cur.VNodes, cur.URLs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, hs := range f.https {
		pushRing(t, hs.URL, next)
	}
	return next
}

// TestRingVersionRefetchRetry: every mutating path must survive another
// router committing a newer ring — the partition's 409 carries the
// installed version, the Router refetches and retries. Covered paths:
// the fan-out batch (including the duplicate-batch probe), the
// owner-routed op, and a cold router that has no ring at all.
func TestRingVersionRefetchRetry(t *testing.T) {
	com := testCommunity(t, 12)
	f := startFleet(t, com, 2)
	defer f.close()

	// Bootstrap ring v1 (a same-topology rebalance installs it).
	if _, err := f.router.Rebalance(context.Background(), fleetURLs(f), partition.RebalanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if rg := f.router.Ring(); rg == nil || rg.Version != 1 {
		t.Fatalf("bootstrap ring %+v, want version 1", f.router.Ring())
	}

	// Fan-out heal: the fleet moves to v2 behind the Router's back; its
	// next batch is rejected 409 by every partition, refetched, retried.
	bumpRing(t, f)
	objs := stream(10)
	want, err1 := f.ref.AddBatch(objs)
	got, err2 := f.router.AddBatch(objs)
	if err1 != nil || err2 != nil {
		t.Fatalf("batch through stale router: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-heal deliveries differ:\nreference %v\nrouter    %v", want, got)
	}
	if rg := f.router.Ring(); rg.Version != 2 {
		t.Errorf("router ring = v%d after heal, want 2", rg.Version)
	}

	// Owner-op heal: same dance on the single-owner path.
	bumpRing(t, f)
	prefs := []paretomon.Preference{{Attr: "a", Better: "v1", Worse: "v0"}}
	if err := f.ref.AddUser("u90", prefs); err != nil {
		t.Fatal(err)
	}
	if err := f.router.AddUser("u90", prefs); err != nil {
		t.Fatalf("AddUser through stale router: %v", err)
	}
	if rg := f.router.Ring(); rg.Version != 3 {
		t.Errorf("router ring = v%d after owner-op heal, want 3", rg.Version)
	}

	// Cold-router heal: a fresh router sends NO version header, which a
	// ringed partition rejects just like a stale one. Its first write
	// adopts v3 and lands. Re-sending the batch the fleet already holds
	// also exercises the duplicate probe: the 4xx duplicate-name
	// rejection resolves via GET /targets reconstruction.
	rtB, err := partition.New(partition.Config{
		URLs:          fleetURLs(f),
		RetryBudget:   5 * time.Second,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rtB.Close()
	redo, err := rtB.AddBatch(objs)
	if err != nil {
		t.Fatalf("duplicate batch through cold router: %v", err)
	}
	for _, d := range redo {
		wantUsers, err := f.ref.TargetsOf(d.Object)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantUsers, d.Users) {
			t.Errorf("probe-reconstructed delivery(%s): %v, want current targets %v", d.Object, d.Users, wantUsers)
		}
	}
	// The duplicate never needed the write path (the probe is a read, and
	// reads are not ring-gated), so the cold router is STILL ringless —
	// only a genuinely new write forces the headerless 409 and the heal.
	if rg := rtB.Ring(); rg != nil {
		t.Errorf("cold router adopted ring %+v from a read-only resolution", rg)
	}
	if err := f.ref.AddUser("u91", prefs); err != nil {
		t.Fatal(err)
	}
	if err := rtB.AddUser("u91", prefs); err != nil {
		t.Fatalf("AddUser through cold router: %v", err)
	}
	if rg := rtB.Ring(); rg == nil || rg.Version != 3 {
		t.Errorf("cold router ring = %+v after headerless heal, want version 3", rtB.Ring())
	}
	assertIdentical(t, f, 10)
}

// fleetURLs lists the fleet's partition base URLs.
func fleetURLs(f *fleet) []string {
	urls := make([]string, len(f.https))
	for i, hs := range f.https {
		urls[i] = hs.URL
	}
	return urls
}

// TestRouterLeaseMutualExclusion: with Config.RouterID set, mutations
// acquire the fleet write lease from partition 0. A second router is
// fenced out until the holder releases (Close) or its TTL lapses, and
// every handover bumps the fencing epoch.
func TestRouterLeaseMutualExclusion(t *testing.T) {
	com := testCommunity(t, 12)
	f := startFleet(t, com, 2)
	defer f.close()

	const ttl = 250 * time.Millisecond
	mk := func(id string) *partition.Router {
		t.Helper()
		rt, err := partition.New(partition.Config{
			URLs:          fleetURLs(f),
			RetryBudget:   2 * time.Second,
			RetryInterval: 5 * time.Millisecond,
			RouterID:      id,
			LeaseTTL:      ttl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	ra, rb, rc := mk("ra"), mk("rb"), mk("rc")
	defer rb.Close()
	defer rc.Close()

	prefs := []paretomon.Preference{{Attr: "a", Better: "v1", Worse: "v0"}}
	if err := ra.AddUser("u80", prefs); err != nil {
		t.Fatalf("first writer blocked: %v", err)
	}
	if ra.LeaseEpoch() == 0 {
		t.Fatal("holder reports epoch 0")
	}
	if err := rb.AddUser("u81", prefs); !errors.Is(err, partition.ErrNotLeaseHolder) {
		t.Fatalf("standby write = %v, want ErrNotLeaseHolder", err)
	}

	// Clean handover: Close releases the lease and the standby takes it.
	if err := ra.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rb.AddUser("u81", prefs); err != nil {
		t.Fatalf("standby after release: %v", err)
	}
	epochB := rb.LeaseEpoch()
	if epochB == 0 {
		t.Fatal("new holder reports epoch 0")
	}
	if err := rc.AddUser("u82", prefs); !errors.Is(err, partition.ErrNotLeaseHolder) {
		t.Fatalf("third router while lease live = %v, want ErrNotLeaseHolder", err)
	}

	// Crash handover: the holder goes silent (no renewal) and the TTL
	// judges it dead — partition 0's clock, not the standby's.
	time.Sleep(ttl + 50*time.Millisecond)
	if err := rc.AddUser("u82", prefs); err != nil {
		t.Fatalf("takeover after TTL expiry: %v", err)
	}
	if rc.LeaseEpoch() <= epochB {
		t.Errorf("takeover epoch %d, want > %d (fencing must advance)", rc.LeaseEpoch(), epochB)
	}
}

// TestRouterRetryBudgetPerPartition: one partition flapping must cost
// one retry budget, not one per healthy partition — budgets are
// per-partition and concurrent. The healthy partitions land the batch
// on the first attempt, the down one exhausts its own budget, and the
// re-issue after recovery converges via the duplicate probe.
func TestRouterRetryBudgetPerPartition(t *testing.T) {
	com := testCommunity(t, 12)
	plan, err := partition.NewPlan(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := paretomon.NewMonitor(com, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	var healthy atomic.Bool
	mons := make([]*paretomon.Monitor, 3)
	urls := make([]string, 3)
	for i := 0; i < 3; i++ {
		sub := com.Subset(func(name string) bool { return plan.Owner(name) == i })
		if sub.Len() == 0 {
			t.Fatalf("partition %d owns no users", i)
		}
		mon, err := paretomon.NewMonitor(sub, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
		if err != nil {
			t.Fatal(err)
		}
		defer mon.Close()
		mons[i] = mon
		h := http.Handler(server.New(mon))
		if i == 2 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if !healthy.Load() {
					http.Error(w, "flapping", http.StatusServiceUnavailable)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		hs := httptest.NewServer(h)
		defer hs.Close()
		urls[i] = hs.URL
	}

	const budget = 500 * time.Millisecond
	rt, err := partition.New(partition.Config{
		URLs:          urls,
		RetryBudget:   budget,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	objs := stream(6)
	if _, err := ref.AddBatch(objs); err != nil {
		t.Fatal(err)
	}
	startT := time.Now()
	_, err = rt.AddBatch(objs)
	elapsed := time.Since(startT)
	if !errors.Is(err, partition.ErrPartitionDown) {
		t.Fatalf("batch with partition 2 down = %v, want ErrPartitionDown", err)
	}
	var re *partition.RouteError
	if !errors.As(err, &re) {
		t.Fatalf("error %T, want *RouteError", err)
	}
	if len(re.Failures) != 1 || re.Failures[0].Partition != 2 {
		t.Fatalf("failures %v, want exactly partition 2", re.Failures)
	}
	// The regression gate: were budgets shared or sequential, the two
	// healthy partitions' work would stack onto the flapper's clock.
	if elapsed > 3*budget {
		t.Errorf("fan-out with one down partition took %v, want ≈ one budget (%v)", elapsed, budget)
	}
	// The healthy partitions hold the batch despite the fleet error.
	for i := 0; i < 2; i++ {
		if _, err := mons[i].TargetsOf("o1"); err != nil {
			t.Errorf("healthy partition %d does not hold o1: %v", i, err)
		}
	}

	// Recovery: the same batch re-issued lands everywhere — duplicates
	// on the healthy partitions resolve via the applied-prefix probe —
	// and the fleet is identical to the reference.
	healthy.Store(true)
	if _, err := rt.AddBatch(objs); err != nil {
		t.Fatalf("re-issue after recovery: %v", err)
	}
	for _, u := range ref.Users() {
		wantF, err1 := ref.Frontier(u)
		gotF, err2 := rt.Frontier(u)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(wantF, gotF) {
			t.Fatalf("frontier(%s): reference %v (%v), router %v (%v)", u, wantF, err1, gotF, err2)
		}
	}
	for i := 1; i <= len(objs); i++ {
		name := fmt.Sprintf("o%d", i)
		wantT, err1 := ref.TargetsOf(name)
		gotT, err2 := rt.TargetsOf(name)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(wantT, gotT) {
			t.Fatalf("targets(%s): reference %v (%v), router %v (%v)", name, wantT, err1, gotT, err2)
		}
	}
}

// TestLeaseTTLServerClamp: a misconfigured router asking for an
// enormous TTL must not be able to lock the fleet's write path until
// the heat death of the lease — partition 0 clamps the TTL and echoes
// the effective value in the grant, which is what routers fence by.
func TestLeaseTTLServerClamp(t *testing.T) {
	com := testCommunity(t, 4)
	f := startFleet(t, com, 1)
	defer f.close()

	resp, err := http.Post(f.https[0].URL+"/lease", "application/json",
		strings.NewReader(`{"id":"greedy","ttl_ms":86400000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire status %d", resp.StatusCode)
	}
	var grant struct {
		ID        string `json:"id"`
		TTLMillis int64  `json:"ttl_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		t.Fatal(err)
	}
	if want := (5 * time.Minute).Milliseconds(); grant.TTLMillis != want {
		t.Errorf("granted ttl_ms = %d, want clamped to %d", grant.TTLMillis, want)
	}
	// Release so the day-long request leaves no residue for other tests.
	req, _ := http.NewRequest(http.MethodDelete, f.https[0].URL+"/lease?id=greedy", nil)
	if dr, err := http.DefaultClient.Do(req); err == nil {
		dr.Body.Close()
	}
}

// freshUserOwnedBy returns an unregistered user name the plan assigns
// to partition idx, so a test can aim a mutation at a chosen partition.
func freshUserOwnedBy(plan *partition.Plan, idx int, tag string) string {
	for i := 0; ; i++ {
		if name := fmt.Sprintf("%s%d", tag, i); plan.Owner(name) == idx {
			return name
		}
	}
}

// TestMutationFencedByLeaseLoss: the fencing half of the lease
// contract. A mutation may retry for the full budget — far longer than
// one lease TTL — but it must renew the lease as it goes, and the
// moment the lease is lost to another holder it must abort with
// ErrNotLeaseHolder instead of keeping attempts in flight under
// someone else's tenure (the pre-fix behavior: retry blindly for the
// whole budget and land a write after a standby took over).
func TestMutationFencedByLeaseLoss(t *testing.T) {
	com := testCommunity(t, 12)
	plan, err := partition.NewPlan(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var denyLease, flapping atomic.Bool
	mons := make([]*paretomon.Monitor, 2)
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		sub := com.Subset(func(name string) bool { return plan.Owner(name) == i })
		mon, err := paretomon.NewMonitor(sub, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
		if err != nil {
			t.Fatal(err)
		}
		defer mon.Close()
		mons[i] = mon
		h := http.Handler(server.New(mon))
		switch i {
		case 0: // the lease arbiter: simulate another router taking over
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if denyLease.Load() && r.Method == http.MethodPost && r.URL.Path == "/lease" {
					http.Error(w, `{"error":"lease held by \"other\" for another 9999ms"}`, http.StatusConflict)
					return
				}
				inner.ServeHTTP(w, r)
			})
		case 1: // the mutation target: slow partition, alive but rejecting
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if flapping.Load() && r.Method != http.MethodGet {
					http.Error(w, "flapping", http.StatusServiceUnavailable)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		hs := httptest.NewServer(h)
		defer hs.Close()
		urls[i] = hs.URL
	}

	const ttl = 200 * time.Millisecond
	const budget = 6 * time.Second
	rt, err := partition.New(partition.Config{
		URLs:          urls,
		RetryBudget:   budget,
		RetryInterval: 5 * time.Millisecond,
		RouterID:      "ra",
		LeaseTTL:      ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Warm up: acquire the lease while the fleet is healthy.
	prefs := []paretomon.Preference{{Attr: "a", Better: "v1", Worse: "v0"}}
	if err := rt.AddUser(freshUserOwnedBy(plan, 1, "wa"), prefs); err != nil {
		t.Fatalf("warm-up mutation: %v", err)
	}

	// Partition 1 starts flapping and, before the router can renew, the
	// lease moves to another holder.
	flapping.Store(true)
	denyLease.Store(true)
	startT := time.Now()
	err = rt.AddUser(freshUserOwnedBy(plan, 1, "fb"), prefs)
	elapsed := time.Since(startT)
	if !errors.Is(err, partition.ErrNotLeaseHolder) {
		t.Fatalf("fenced mutation = %v, want ErrNotLeaseHolder", err)
	}
	// The abort must come from the lease fence (≈ one TTL), not from
	// grinding through the whole retry budget.
	if elapsed > budget/2 {
		t.Errorf("fenced mutation took %v, want ≈ one lease TTL (%v)", elapsed, ttl)
	}
}

// TestMutationOutlivesTTLByRenewing: the other half of the fence — a
// mutation whose target partition stays down longer than one lease TTL
// must still succeed within the retry budget, because the retry loop
// renews the lease at each fence boundary instead of giving up.
func TestMutationOutlivesTTLByRenewing(t *testing.T) {
	com := testCommunity(t, 12)
	plan, err := partition.NewPlan(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var flapping atomic.Bool
	flapping.Store(true)
	mons := make([]*paretomon.Monitor, 2)
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		sub := com.Subset(func(name string) bool { return plan.Owner(name) == i })
		mon, err := paretomon.NewMonitor(sub, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
		if err != nil {
			t.Fatal(err)
		}
		defer mon.Close()
		mons[i] = mon
		h := http.Handler(server.New(mon))
		if i == 1 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if flapping.Load() && r.Method != http.MethodGet {
					http.Error(w, "flapping", http.StatusServiceUnavailable)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		hs := httptest.NewServer(h)
		defer hs.Close()
		urls[i] = hs.URL
	}

	const ttl = 150 * time.Millisecond
	rt, err := partition.New(partition.Config{
		URLs:          urls,
		RetryBudget:   6 * time.Second,
		RetryInterval: 5 * time.Millisecond,
		RouterID:      "ra",
		LeaseTTL:      ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Heal the partition only after several TTLs have lapsed: the old
	// entry-only lease check would have let the attempt run unfenced;
	// a naive deadline cap would have failed it at the first TTL.
	go func() {
		time.Sleep(3 * ttl)
		flapping.Store(false)
	}()
	prefs := []paretomon.Preference{{Attr: "a", Better: "v1", Worse: "v0"}}
	startT := time.Now()
	if err := rt.AddUser(freshUserOwnedBy(plan, 1, "rn"), prefs); err != nil {
		t.Fatalf("mutation across %v of flapping: %v", 3*ttl, err)
	}
	if elapsed := time.Since(startT); elapsed < 3*ttl {
		t.Errorf("mutation returned in %v, before the partition healed at %v", elapsed, 3*ttl)
	}
}

// TestStandbyReadsFollowRingFlip: a standby HA router never mutates, so
// it cannot learn of ring flips through the write path's 409s. When the
// active router migrates a user, the standby's owner-routed reads must
// chase the flip — a 404 from the old owner triggers one ring refresh
// and a re-resolve — instead of reporting ErrUnknownUser for a user
// that exists until failover.
func TestStandbyReadsFollowRingFlip(t *testing.T) {
	com := testCommunity(t, 12)
	f := startFleet(t, com, 2)
	defer f.close()
	mk := func(id string) *partition.Router {
		t.Helper()
		rt, err := partition.New(partition.Config{
			URLs:          fleetURLs(f),
			RetryBudget:   5 * time.Second,
			RetryInterval: 5 * time.Millisecond,
			RouterID:      id,
			LeaseTTL:      2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	ra, rb := mk("ra"), mk("rb")
	defer ra.Close()
	defer rb.Close()

	// Active router takes the lease and gives the frontiers substance.
	if _, err := ra.AddBatch(stream(8)); err != nil {
		t.Fatal(err)
	}
	const u = "u0"
	want, err := rb.Frontier(u)
	if err != nil {
		t.Fatalf("standby read before flip: %v", err)
	}

	from := ra.Owner(u)
	to := 1 - from
	if err := ra.Migrate([]string{u}, from, to); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// The standby still routes by its stale view; the read must heal.
	got, err := rb.Frontier(u)
	if err != nil {
		t.Fatalf("standby read after flip: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("standby frontier(%s) after flip %v, want %v", u, got, want)
	}
	if rb.Owner(u) != to {
		t.Errorf("standby owner(%s) = %d after heal, want %d", u, rb.Owner(u), to)
	}
	// A genuinely unknown user still reads as unknown (one refresh, no
	// infinite chase).
	if _, err := rb.Frontier("nobody"); !errors.Is(err, paretomon.ErrUnknownUser) {
		t.Errorf("frontier(nobody) = %v, want ErrUnknownUser", err)
	}
}

// TestRebalanceAbortsWhenUserListUnreachable: the no-lost-users
// guarantee. The pin set in Rebalance phase B must come from a strict
// fleet-wide user listing — if a partition cannot enumerate its users,
// the rebalance must abort rather than plan around an empty list
// (pre-fix, a scale-in would commit the final ring with the down
// partition's users never migrated: stranded on a retired partition,
// vanished from the community, no error anywhere).
func TestRebalanceAbortsWhenUserListUnreachable(t *testing.T) {
	com := testCommunity(t, 12)
	plan, err := partition.NewPlan(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var usersCalls atomic.Int64
	mons := make([]*paretomon.Monitor, 2)
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		sub := com.Subset(func(name string) bool { return plan.Owner(name) == i })
		mon, err := paretomon.NewMonitor(sub, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
		if err != nil {
			t.Fatal(err)
		}
		defer mon.Close()
		mons[i] = mon
		h := http.Handler(server.New(mon))
		if i == 1 {
			// The first GET /users (the pre-migration Reconcile) succeeds;
			// the partition then goes dark for listings only — everything
			// else (readyz, ring, reads) keeps answering, which is exactly
			// the window the seeded bug silently planned through.
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet && r.URL.Path == "/users" && usersCalls.Add(1) > 1 {
					http.Error(w, "listing unavailable", http.StatusServiceUnavailable)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		hs := httptest.NewServer(h)
		defer hs.Close()
		urls[i] = hs.URL
	}

	rt, err := partition.New(partition.Config{
		URLs:          urls,
		RetryBudget:   400 * time.Millisecond,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	_, err = rt.Rebalance(context.Background(), urls[:1], partition.RebalanceOptions{})
	if err == nil {
		t.Fatal("scale-in completed with partition 1's user list unreachable — its users would be stranded")
	}
	if !errors.Is(err, partition.ErrPartitionDown) {
		t.Fatalf("rebalance error = %v, want ErrPartitionDown", err)
	}
	// Nothing moved and nothing was lost: both partitions hold exactly
	// their original slices and the ring still spans both.
	for i, mon := range mons {
		for _, u := range mon.Users() {
			if plan.Owner(u) != i {
				t.Errorf("user %q drifted to partition %d mid-abort", u, i)
			}
		}
	}
	if n := len(mons[1].Users()); n == 0 {
		t.Error("partition 1 lost its users")
	}
	if rg := rt.Ring(); rg == nil || rg.Parts != 2 {
		t.Errorf("ring after abort %+v, want 2 live partitions", rg)
	}
}
