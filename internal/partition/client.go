package partition

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// client is one partition's HTTP surface: the existing internal/server
// JSON API, spoken with explicit contexts so the Router's retry budget
// bounds every attempt.
type client struct {
	base string
	hc   *http.Client
}

func newClient(base string, hc *http.Client) *client {
	return &client{base: strings.TrimRight(base, "/"), hc: hc}
}

// do performs one JSON request. in (when non-nil) is the request body;
// out (when non-nil) receives the decoded 200 response. Non-2xx
// responses decode the server's {"error": ...} envelope into a
// *StatusError; everything transport-level is returned as-is (and
// therefore retryable).
func (c *client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("partition: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeStatusError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("partition: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeStatusError turns a non-200 response into a *StatusError,
// preserving the server's error message when the body carries the
// JSON envelope.
func decodeStatusError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var envelope struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	return &StatusError{Status: resp.StatusCode, Msg: msg}
}

// ready probes GET /readyz: nil means the partition is serving (store
// open, follower synced — see Monitor.Ready).
func (c *client) ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}
