package partition

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
)

// client is one partition's HTTP surface: the existing internal/server
// JSON API, spoken with explicit contexts so the Router's retry budget
// bounds every attempt.
type client struct {
	base string
	hc   *http.Client
	// ring, when non-nil, is the router's current ring version; every
	// request with a non-zero value carries it in RingHeader, and a 409
	// echoing the header back decodes to *RingVersionError.
	ring *atomic.Uint64
}

func newClient(base string, hc *http.Client, ring *atomic.Uint64) *client {
	return &client{base: strings.TrimRight(base, "/"), hc: hc, ring: ring}
}

// stampRing attaches the router's ring version, when one is installed.
func (c *client) stampRing(req *http.Request) {
	if c.ring != nil {
		if v := c.ring.Load(); v != 0 {
			req.Header.Set(RingHeader, strconv.FormatUint(v, 10))
		}
	}
}

// do performs one JSON request. in (when non-nil) is the request body;
// out (when non-nil) receives the decoded 200 response. Non-2xx
// responses decode the server's {"error": ...} envelope into a
// *StatusError; everything transport-level is returned as-is (and
// therefore retryable).
func (c *client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("partition: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.stampRing(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeStatusError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("partition: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeStatusError turns a non-200 response into a *StatusError,
// preserving the server's error message when the body carries the
// JSON envelope. A 409 that echoes the partition's installed ring
// version in RingHeader is the typed ring conflict instead.
func decodeStatusError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var envelope struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	if resp.StatusCode == http.StatusConflict {
		if hdr := resp.Header.Get(RingHeader); hdr != "" {
			if have, err := strconv.ParseUint(hdr, 10, 64); err == nil {
				return &RingVersionError{Have: have, Msg: msg}
			}
		}
	}
	return &StatusError{Status: resp.StatusCode, Msg: msg}
}

// getStream performs a request whose 200 response body is a raw stream
// (replica frames) the caller consumes and closes. in, when non-nil,
// is a JSON request body.
func (c *client) getStream(ctx context.Context, method, path string, in any) (io.ReadCloser, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("partition: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.stampRing(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeStatusError(resp)
	}
	return resp.Body, nil
}

// postStream performs a request whose body is a raw stream (typically
// another partition's getStream response, piped through unbuffered);
// out, when non-nil, receives the decoded JSON 200 response.
func (c *client) postStream(ctx context.Context, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.stampRing(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeStatusError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("partition: decoding %s response: %w", path, err)
	}
	return nil
}

// ready probes GET /readyz: nil means the partition is serving (store
// open, follower synced — see Monitor.Ready).
func (c *client) ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}
