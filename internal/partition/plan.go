package partition

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per partition when a Plan is
// built with vnodes <= 0. 64 points per partition keeps the expected
// ownership imbalance under a few percent for community sizes in the
// thousands while the ring stays tiny (n*64 entries).
const DefaultVNodes = 64

// Plan is the deterministic user → partition assignment: a consistent-
// hash ring with vnodes virtual points per partition. Determinism is
// the whole contract — a router over n URLs and a partition process
// started with -partition i/n must compute identical owners from
// (n, vnodes) alone — so the hash (FNV-1a 64) and the point-label
// scheme ("p<partition>/v<vnode>") are fixed and versioned by this
// package; changing either is a rebalancing event (every user moves to
// a fresh partition whose WAL has no trace of it), not a tuning knob.
//
// Consistent hashing is used for the usual reason: growing n→n+1
// partitions moves only ~1/(n+1) of the users, so a future rebalance
// migrates a slice, not the world. Today rebalancing is offline (see
// docs/PARTITIONING.md); the ring keeps the door open.
type Plan struct {
	parts  int
	vnodes int
	ring   []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a partition.
type ringPoint struct {
	hash uint64
	part int
}

// NewPlan builds the assignment for parts partitions with vnodes
// virtual points each (vnodes <= 0 selects DefaultVNodes).
func NewPlan(parts, vnodes int) (*Plan, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("partition: plan needs at least one partition, got %d", parts)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	p := &Plan{parts: parts, vnodes: vnodes, ring: make([]ringPoint, 0, parts*vnodes)}
	for part := 0; part < parts; part++ {
		for v := 0; v < vnodes; v++ {
			p.ring = append(p.ring, ringPoint{hash: hash64(fmt.Sprintf("p%d/v%d", part, v)), part: part})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool {
		if p.ring[i].hash != p.ring[j].hash {
			return p.ring[i].hash < p.ring[j].hash
		}
		// A full 64-bit collision between two labels is effectively
		// impossible, but ordering must still be total and deterministic.
		return p.ring[i].part < p.ring[j].part
	})
	return p, nil
}

// Partitions returns the partition count n.
func (p *Plan) Partitions() int { return p.parts }

// VNodes returns the virtual-node count per partition.
func (p *Plan) VNodes() int { return p.vnodes }

// Owner returns the partition index owning the named user: the first
// ring point at or clockwise after the user's hash.
func (p *Plan) Owner(user string) int {
	h := hash64(user)
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	if i == len(p.ring) {
		i = 0 // wrap: the circle's first point
	}
	return p.ring[i].part
}

// Assign buckets the given user names by owner, in input order: the
// slice at index i holds partition i's users. Partition processes use
// it to carve their community subset; tests and docs use it to inspect
// the spread.
func (p *Plan) Assign(users []string) [][]string {
	out := make([][]string, p.parts)
	for _, u := range users {
		o := p.Owner(u)
		out[o] = append(out[o], u)
	}
	return out
}

// hash64 is FNV-1a 64 followed by a splitmix64-style finalizer. Raw
// FNV avalanches poorly on short sequential keys like "u17" — ring
// positions come out clustered and ownership badly skewed — so the
// output is mixed before use. Both stages are part of the plan's wire
// contract, never to be changed without a fleet-wide rebalance.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
