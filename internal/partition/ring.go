package partition

import (
	"encoding/json"
	"fmt"
)

// RingHeader is the HTTP header routers stamp onto every partition
// call with the ring version they route by, and partitions stamp onto
// every ring-conflict 409 with the version they have installed. Its
// presence on a 409 is what distinguishes a ring-version conflict
// (refetch and retry) from any other conflict.
const RingHeader = "X-Paretomon-Ring"

// Ring is a versioned user → partition assignment: one Plan generation
// plus the per-user overrides that exist while a rebalance is in
// flight. It is the unit of agreement between routers and partitions —
// every partition persists the newest ring it has been handed (under
// the store meta key "ring"), every router stamps the version it
// believes in onto each mutating call, and a mismatch is a typed 409
// (ErrRingVersion) that forces the slow side to refetch before the
// write lands. See docs/PARTITIONING.md "Live rebalancing".
//
// Ownership resolves in two steps: Moves[user] pins a user to an
// explicit partition index (the transitional state while their history
// is still at the old owner), and everyone else falls to the
// consistent-hash plan over Parts partitions. URLs may be longer than
// Parts during a scale-in — the retiring partitions keep their indices
// (and their pinned users) until migration drains them.
type Ring struct {
	// Version is the ring generation, starting at 1; 0 is reserved for
	// "no ring installed" (the pre-rebalance legacy mode where routers
	// send no version header).
	Version uint64 `json:"version"`
	// Parts and VNodes parameterize the consistent-hash plan that owns
	// every user without a Moves entry.
	Parts  int `json:"parts"`
	VNodes int `json:"vnodes"`
	// URLs are the fleet base URLs by partition index. len(URLs) >=
	// Parts; indices >= Parts are retiring partitions that still hold
	// pinned users.
	URLs []string `json:"urls"`
	// Moves pins users to explicit partition indices while their state
	// migrates; an empty map means the ring is clean (plan-only).
	Moves map[string]int `json:"moves,omitempty"`

	plan *Plan
}

// NewRing assembles and validates a ring, building its plan.
func NewRing(version uint64, parts, vnodes int, urls []string, moves map[string]int) (*Ring, error) {
	rg := &Ring{Version: version, Parts: parts, VNodes: vnodes, URLs: urls, Moves: moves}
	if err := rg.init(); err != nil {
		return nil, err
	}
	return rg, nil
}

// init validates the ring and builds the embedded plan; it is the
// shared tail of NewRing and DecodeRing.
func (rg *Ring) init() error {
	if rg.Version == 0 {
		return fmt.Errorf("partition: ring version 0 is reserved")
	}
	if rg.Parts <= 0 || rg.Parts > len(rg.URLs) {
		return fmt.Errorf("partition: ring has %d parts over %d urls", rg.Parts, len(rg.URLs))
	}
	for u, idx := range rg.Moves {
		if idx < 0 || idx >= len(rg.URLs) {
			return fmt.Errorf("partition: ring pins user %q to partition %d, fleet has %d", u, idx, len(rg.URLs))
		}
	}
	plan, err := NewPlan(rg.Parts, rg.VNodes)
	if err != nil {
		return err
	}
	rg.plan = plan
	return nil
}

// DecodeRing parses a ring payload (the /ring wire format).
func DecodeRing(data []byte) (*Ring, error) {
	var rg Ring
	if err := json.Unmarshal(data, &rg); err != nil {
		return nil, fmt.Errorf("partition: decoding ring: %w", err)
	}
	if err := rg.init(); err != nil {
		return nil, err
	}
	return &rg, nil
}

// Encode serializes the ring for /ring.
func (rg *Ring) Encode() []byte {
	data, err := json.Marshal(rg)
	if err != nil {
		panic(fmt.Sprintf("partition: encoding ring: %v", err)) // plain data, cannot fail
	}
	return data
}

// Owner resolves a user: the Moves pin when present, the plan
// otherwise.
func (rg *Ring) Owner(user string) int {
	if idx, ok := rg.Moves[user]; ok {
		return idx
	}
	return rg.plan.Owner(user)
}

// PlanOwner resolves a user against the plan alone, ignoring pins —
// where the user lands once migration completes.
func (rg *Ring) PlanOwner(user string) int { return rg.plan.Owner(user) }

// successor derives the next ring generation: same plan parameters
// unless overridden, version bumped by one, and a fresh Moves map the
// caller may edit before pushing.
func (rg *Ring) successor() *Ring {
	moves := make(map[string]int, len(rg.Moves))
	for u, idx := range rg.Moves {
		moves[u] = idx
	}
	next := &Ring{
		Version: rg.Version + 1,
		Parts:   rg.Parts,
		VNodes:  rg.VNodes,
		URLs:    append([]string(nil), rg.URLs...),
		Moves:   moves,
		plan:    rg.plan,
	}
	return next
}
