// Package partition scales writes past one process: it splits one
// logical community across N ordinary primary monitors — each a full
// durable paretomon process owning a consistent-hash slice of the users
// — and presents the fleet as a single Driver through a Router.
//
// The decomposition follows the paper's structure directly: every
// arriving object is evaluated against each user's preference order
// independently (Alg. 1; the cluster tier of Algs. 2–3 only shares work
// *within* a cluster of similar users), so the community partitions
// cleanly by user. The Router therefore fans Add/AddBatch to every
// partition concurrently — each partition does only its users' share of
// the comparison work — and routes user-scoped calls (Frontier,
// lifecycle, preferences, subscriptions) to the single partition that
// owns the user. Aggregate reads (Stats, Users, Clusters, storage
// stats) are merged across the fleet.
//
// A Plan is the deterministic contract between the router and the
// partition processes: the same (partitions, vnodes) pair computes the
// same owner for every user name in every process, so a partition
// started with `cmd/paretomon -partition i/n` holds exactly the users a
// router over n URLs will send it.
//
// Each partition is an ordinary durable primary — its own data dir, its
// own WAL — so the internal/replica changefeed composes into a tree:
//
//	router → N partitioned primaries → per-partition read followers
//
// Failure handling: per-partition calls carry a retry budget. Transport
// errors and 5xx responses are retried — after probing GET /readyz, so
// a partition restarting through recovery is waited out rather than
// hammered — while 4xx responses are authoritative. What cannot be
// completed within the budget surfaces as a *RouteError aggregating one
// *PartitionError (wrapping ErrPartitionDown) per failed partition.
// See docs/PARTITIONING.md for the ring layout, rebalancing caveats,
// and the failure playbook.
package partition
