package partition

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	paretomon "repro"
)

// Default retry parameters: how long a Router keeps trying to land an
// operation on an unresponsive partition before declaring it down, and
// how long it sleeps between readiness probes while waiting.
const (
	DefaultRetryBudget   = 30 * time.Second
	DefaultRetryInterval = 25 * time.Millisecond
)

// DefaultLeaseTTL is the write-lease duration when Config.RouterID
// enables HA and Config.LeaseTTL is zero; the holder renews after a
// third of it elapses, so a standby waits at most one TTL on failover.
const DefaultLeaseTTL = 10 * time.Second

// DefaultMigrateTimeout bounds one bulk migration stream (a user
// export/import or an object-registry sync) when Config.MigrateTimeout
// is zero. Deliberately much larger than the per-call retry budget: a
// big registry or user batch legitimately streams for minutes, and
// re-cutting the stream at the retry budget would make Rebalance
// unable to ever complete for large datasets.
const DefaultMigrateTimeout = 5 * time.Minute

// ringRetryRounds bounds how many times one operation refreshes the
// ring and retries after a version conflict before giving up — enough
// to chase a concurrent rebalance commit or two, finite so a fleet
// being rebalanced faster than we can refetch fails loudly instead of
// looping.
const ringRetryRounds = 4

// Config describes the fleet a Router fronts.
type Config struct {
	// URLs are the partition base URLs in plan order: URLs[i] must be the
	// process started with -partition i/len(URLs) (or an equivalent
	// Subset), or the plan's owners and the fleet's holdings disagree.
	URLs []string
	// VNodes is the per-partition virtual-node count; 0 selects
	// DefaultVNodes. It must match the partitions' own plans.
	VNodes int
	// Client is the HTTP client for partition calls; nil selects
	// http.DefaultClient.
	Client *http.Client
	// RetryBudget bounds how long one operation keeps retrying a
	// partition that fails with a retryable error (transport, 5xx)
	// before giving up with ErrPartitionDown; 0 selects
	// DefaultRetryBudget.
	RetryBudget time.Duration
	// RetryInterval is the pause between readiness probes while waiting
	// out a down partition; 0 selects DefaultRetryInterval.
	RetryInterval time.Duration
	// RouterID, when non-empty, enables router HA: before every
	// mutation the Router acquires (or renews) the fleet write lease
	// under this identity on partition 0, and refuses to write while
	// another router holds it (ErrNotLeaseHolder). Two routers fronting
	// one fleet MUST both set it; a single router may leave it empty.
	// See docs/PARTITIONING.md "Router HA".
	RouterID string
	// LeaseTTL is the write-lease duration; 0 selects DefaultLeaseTTL.
	// Partition 0 may clamp oversized TTLs; the router fences by the
	// granted value.
	LeaseTTL time.Duration
	// MigrateTimeout bounds one bulk migration stream (user
	// export/import, object sync) during Migrate/Rebalance; 0 selects
	// DefaultMigrateTimeout. Size it to the largest partition's state,
	// not to the retry budget.
	MigrateTimeout time.Duration
	// Observe, when non-nil, receives rebalance progress events
	// synchronously as each step completes (keep it fast; it runs under
	// the write freeze).
	Observe func(RebalanceEvent)
}

// remote is one partition as the Router sees it.
type remote struct {
	*client
	idx int
	url string
}

// Router presents a partitioned fleet as one paretomon.Driver: writes
// fan out to every partition (each holds a consistent-hash slice of the
// users, so each does its share of the work), user-scoped calls route
// to the owner, and aggregates merge. See the package comment and
// docs/PARTITIONING.md.
//
// Mutations are serialized router-wide by an internal mutex, so every
// partition observes the same mutation order — the property that makes
// a fleet's frontiers reproducible against a single monitor fed the
// same stream. Reads bypass the mutex entirely.
type Router struct {
	plan     *Plan
	hc       *http.Client
	budget   time.Duration
	interval time.Duration
	// migrateTO bounds one bulk migration stream; see
	// Config.MigrateTimeout.
	migrateTO time.Duration

	// ringMu guards parts and ring. ring is nil until the fleet
	// installs one (legacy mode: route by the static plan, stamp no
	// version header); ringVer mirrors ring.Version so the clients
	// stamp headers without taking the lock. parts is rebuilt wholesale
	// on ring install — readers snapshot it via remotes().
	ringMu sync.RWMutex
	parts  []*remote
	ring   *Ring
	// ringVer is shared with every client by pointer.
	ringVer atomic.Uint64

	// Router HA lease state; see rebalance.go.
	leaseID  string
	leaseTTL time.Duration
	lease    leaseState

	// observe receives rebalance progress events; nil = silent.
	observe func(RebalanceEvent)

	// rebalancing rejects overlapped Rebalance calls (each one already
	// interleaves freeze windows with live traffic; two at once would
	// interleave ring successions).
	rebalancing atomic.Bool

	// mu serializes mutations fleet-wide; see the type comment.
	mu sync.Mutex
}

var _ paretomon.Driver = (*Router)(nil)

// New builds a Router over the given fleet.
func New(cfg Config) (*Router, error) {
	if len(cfg.URLs) == 0 {
		return nil, errors.New("partition: router needs at least one partition URL")
	}
	plan, err := NewPlan(len(cfg.URLs), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	hc := cfg.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	budget := cfg.RetryBudget
	if budget <= 0 {
		budget = DefaultRetryBudget
	}
	interval := cfg.RetryInterval
	if interval <= 0 {
		interval = DefaultRetryInterval
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	migrateTO := cfg.MigrateTimeout
	if migrateTO <= 0 {
		migrateTO = DefaultMigrateTimeout
	}
	r := &Router{
		plan: plan, hc: hc, budget: budget, interval: interval, migrateTO: migrateTO,
		leaseID: cfg.RouterID, leaseTTL: ttl, observe: cfg.Observe,
	}
	for i, u := range cfg.URLs {
		c := newClient(u, hc, &r.ringVer)
		r.parts = append(r.parts, &remote{client: c, idx: i, url: c.base})
	}
	return r, nil
}

// Plan returns the Router's static user → partition assignment — the
// bootstrap plan the fleet was started with. Once a ring is installed
// (any rebalance), Ring supersedes it for routing.
func (r *Router) Plan() *Plan { return r.plan }

// remotes snapshots the current partition set. The slice is replaced,
// never mutated, on ring install, so holding a snapshot across a ring
// flip is safe — at worst an operation lands with a stale version
// header and comes back as a ring conflict.
func (r *Router) remotes() []*remote {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	return r.parts
}

// Ring returns the ring the Router currently routes by, nil before any
// rebalance installs one.
func (r *Router) Ring() *Ring {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	return r.ring
}

// Owner returns the partition index owning the named user: the
// installed ring's say when there is one, the static plan's otherwise.
func (r *Router) Owner(user string) int {
	r.ringMu.RLock()
	defer r.ringMu.RUnlock()
	if r.ring != nil {
		return r.ring.Owner(user)
	}
	return r.plan.Owner(user)
}

// PartitionURL returns partition i's base URL.
func (r *Router) PartitionURL(i int) string { return r.remotes()[i].url }

// HTTPClient returns the client used for partition calls — a fronting
// server reuses it to proxy subscription streams to owner partitions.
func (r *Router) HTTPClient() *http.Client { return r.hc }

// Close releases the Router: if it holds the write lease it steps down
// (best-effort) so a standby takes over immediately. The partitions
// are independent processes and keep running.
func (r *Router) Close() error {
	r.releaseLease()
	return nil
}

// Ready probes every partition's /readyz; nil means the whole fleet is
// serving. The error aggregates each unready partition.
func (r *Router) Ready(ctx context.Context) error {
	parts := r.remotes()
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			if err := p.ready(ctx); err != nil {
				errs[i] = &PartitionError{Partition: p.idx, URL: p.url, Err: err}
			}
		}(i, p)
	}
	wg.Wait()
	return collect("Ready", errs)
}

// collect folds per-partition failures into one *RouteError (nil when
// none failed).
func collect(op string, errs []error) error {
	var fails []*PartitionError
	for i, err := range errs {
		if err == nil {
			continue
		}
		var pe *PartitionError
		if !errors.As(err, &pe) {
			pe = &PartitionError{Partition: i, Err: err}
		}
		fails = append(fails, pe)
	}
	if len(fails) == 0 {
		return nil
	}
	return &RouteError{Op: op, Failures: fails}
}

// sleepCtx sleeps d, reporting false if ctx expired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// awaitReady waits (within ctx) until the partition answers /readyz,
// probing every retry interval. A restarting partition replays its WAL
// before serving; probing instead of blind re-sends keeps the retry
// loop from hammering a process mid-recovery.
func (r *Router) awaitReady(ctx context.Context, p *remote) {
	for {
		if !sleepCtx(ctx, r.interval) {
			return
		}
		if p.ready(ctx) == nil {
			return
		}
	}
}

// downError wraps the last attempt error as an exhausted-budget
// *PartitionError carrying ErrPartitionDown.
func downError(p *remote, lastErr error) *PartitionError {
	return &PartitionError{
		Partition: p.idx,
		URL:       p.url,
		Err:       fmt.Errorf("%w: retry budget exhausted: %w", ErrPartitionDown, lastErr),
	}
}

// withRetry runs fn against one partition under the retry budget:
// retryable failures (transport, 5xx) wait for /readyz and try again;
// authoritative failures (4xx) return immediately. Exhausting the
// budget yields a *PartitionError wrapping ErrPartitionDown.
func (r *Router) withRetry(p *remote, fn func(ctx context.Context) error) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.budget)
	defer cancel()
	var lastErr error
	for ctx.Err() == nil {
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		lastErr = err
		r.awaitReady(ctx, p)
	}
	return downError(p, lastErr)
}

// writeAttemptCtx derives the context for one mutation attempt under
// router HA: the parent (retry-budget) context capped at the write
// lease's conservative expiry, renewing first when the lease has
// lapsed. This is the fencing half of the lease contract — a mutation
// may retry far longer than one TTL, but no single attempt stays in
// flight past the lease that covered it when it was sent; losing the
// lease mid-retry surfaces ErrNotLeaseHolder instead of a late write
// landing under another router's tenure. Identity (with a no-op
// cancel) when HA is off.
func (r *Router) writeAttemptCtx(parent context.Context) (context.Context, context.CancelFunc, error) {
	if r.leaseID == "" {
		return parent, func() {}, nil
	}
	for {
		if exp, held := r.leaseExpiry(); held && time.Until(exp) > 0 {
			ctx, cancel := context.WithDeadline(parent, exp)
			return ctx, cancel, nil
		}
		if err := r.ensureLease(); err != nil {
			return nil, nil, err
		}
	}
}

// withWriteRetry is withRetry for lease-fenced mutations: each attempt
// runs under writeAttemptCtx, so a retry loop keeps renewing the lease
// and no attempt outlives it. Exactly withRetry when HA is off.
func (r *Router) withWriteRetry(p *remote, fn func(ctx context.Context) error) error {
	if r.leaseID == "" {
		return r.withRetry(p, fn)
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.budget)
	defer cancel()
	var lastErr error
	for ctx.Err() == nil {
		actx, acancel, lerr := r.writeAttemptCtx(ctx)
		if lerr != nil {
			return lerr
		}
		err := fn(actx)
		if err == nil {
			acancel()
			return nil
		}
		if !retryable(err) {
			acancel()
			return err
		}
		lastErr = err
		r.awaitReady(actx, p)
		acancel()
	}
	return downError(p, lastErr)
}

// Wire shadows of internal/server's request/response bodies. The server
// package keeps them unexported; the shapes are the stable HTTP API.
type objectPayload struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

type batchPayload struct {
	Objects []objectPayload `json:"objects"`
}

type deliveryPayload struct {
	Object string   `json:"object"`
	Users  []string `json:"users"`
}

type batchReply struct {
	Deliveries []deliveryPayload `json:"deliveries"`
}

type preferencePayload struct {
	User      string `json:"user"`
	Attribute string `json:"attribute"`
	Better    string `json:"better"`
	Worse     string `json:"worse"`
}

type addUserPayload struct {
	Name        string              `json:"name"`
	Preferences []preferencePayload `json:"preferences"`
}

type frontierReply struct {
	User     string   `json:"user"`
	Frontier []string `json:"frontier"`
}

type targetsReply struct {
	Object string   `json:"object"`
	Users  []string `json:"users"`
}

// mapNotFound rewraps a 404 from a partition with the matching
// paretomon sentinel, so library callers keep their errors.Is dispatch;
// the *StatusError stays in the chain for HTTP passthrough.
func mapNotFound(err, sentinel error) error {
	var se *StatusError
	if errors.As(err, &se) && se.Status == http.StatusNotFound {
		return fmt.Errorf("%w: %w", sentinel, se)
	}
	return err
}

// Add ingests one object fleet-wide; the delivery unions every
// partition's targets. It is AddBatch of one.
func (r *Router) Add(name string, values ...string) (paretomon.Delivery, error) {
	ds, err := r.AddBatch([]paretomon.Object{{Name: name, Values: values}})
	if err != nil {
		return paretomon.Delivery{}, err
	}
	return ds[0], nil
}

// AddBatch fans the batch to every partition concurrently. Each
// partition ingests the full batch against its own users, so the
// merged deliveries — per-object union of each partition's targets,
// sorted — match what a single monitor over the whole community would
// deliver.
//
// Failure semantics: a partition that fails retryably is retried under
// the budget, probing /readyz between attempts. Because a partition
// may have applied the batch (fully or, after a crash mid-append, as a
// prefix) before the response was lost, every retry first resolves the
// applied prefix by probing GET /targets object by object — WAL records
// apply in batch order — reconstructs those deliveries from current
// targets, and re-sends only the remainder. The reconstruction is an
// approximation in one corner: a user whose delivery was dominated by a
// later object of the same batch before the crash is not re-reported.
//
// If any partition stays down past the budget the call returns a
// *RouteError and the fleet may hold the batch partially; re-issuing
// the same AddBatch is safe (applied partitions resolve it as the
// prefix probe above) — see the failure playbook in
// docs/PARTITIONING.md.
func (r *Router) AddBatch(objs []paretomon.Object) ([]paretomon.Delivery, error) {
	if len(objs) == 0 {
		return []paretomon.Delivery{}, nil
	}
	req := batchPayload{Objects: make([]objectPayload, len(objs))}
	for i, o := range objs {
		req.Objects[i] = objectPayload{Name: o.Name, Values: o.Values}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return nil, err
	}
	var out []paretomon.Delivery
	err := r.ringRetry("AddBatch", func() error {
		parts := r.remotes()
		results := make([][]paretomon.Delivery, len(parts))
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for i, p := range parts {
			wg.Add(1)
			go func(i int, p *remote) {
				defer wg.Done()
				results[i], errs[i] = r.addBatchOne(p, req)
			}(i, p)
		}
		wg.Wait()
		if err := collect("AddBatch", errs); err != nil {
			return err
		}
		out = mergeDeliveries(objs, results)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// addBatchOne lands one batch on one partition, resuming across
// retryable failures per the AddBatch contract. The POST itself (the
// mutation) is lease-fenced via writeAttemptCtx; the applied-prefix
// probes are reads and run under the plain budget.
func (r *Router) addBatchOne(p *remote, req batchPayload) ([]paretomon.Delivery, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.budget)
	defer cancel()
	out := make([]paretomon.Delivery, 0, len(req.Objects))
	start := 0         // first object not known to be applied on p
	ambiguous := false // a failed attempt may have (partially) applied
	var lastErr error
	for start < len(req.Objects) {
		if ctx.Err() != nil {
			return nil, downError(p, lastErr)
		}
		if ambiguous {
			n, err := r.advanceApplied(ctx, p, req, start, &out)
			if err != nil {
				if retryable(err) {
					lastErr = err
					r.awaitReady(ctx, p)
					continue
				}
				return nil, err
			}
			start = n
			ambiguous = false
			if start == len(req.Objects) {
				break
			}
		}
		actx, acancel, lerr := r.writeAttemptCtx(ctx)
		if lerr != nil {
			return nil, lerr
		}
		var reply batchReply
		err := p.do(actx, http.MethodPost, "/objects/batch", batchPayload{Objects: req.Objects[start:]}, &reply)
		acancel()
		if err == nil {
			for _, d := range reply.Deliveries {
				out = append(out, paretomon.Delivery{Object: d.Object, Users: d.Users})
			}
			return out, nil
		}
		if !retryable(err) {
			// A 4xx can still mean "already applied": a retry of a batch
			// the partition fully holds is rejected as a duplicate name.
			// The applied-prefix probe disambiguates.
			n, perr := r.advanceApplied(ctx, p, req, start, &out)
			if perr == nil && n > start {
				start = n
				continue
			}
			return nil, err
		}
		lastErr = err
		ambiguous = true
		r.awaitReady(ctx, p)
	}
	return out, nil
}

// advanceApplied walks the batch from start, probing GET /targets for
// each object to learn which the partition already holds — a crash
// mid-batch applies a prefix, in order — and reconstructs their
// deliveries from current targets. Returns the index of the first
// object not applied.
func (r *Router) advanceApplied(ctx context.Context, p *remote, req batchPayload, start int, out *[]paretomon.Delivery) (int, error) {
	for start < len(req.Objects) {
		name := req.Objects[start].Name
		var reply targetsReply
		if err := p.do(ctx, http.MethodGet, "/targets/"+url.PathEscape(name), nil, &reply); err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Status == http.StatusNotFound {
				return start, nil // not applied; the rest of the batch is not either
			}
			return start, err
		}
		*out = append(*out, paretomon.Delivery{Object: name, Users: reply.Users})
		start++
	}
	return start, nil
}

// mergeDeliveries unions each object's per-partition targets into one
// community-wide delivery, sorted and deduplicated like a Monitor's —
// dedup matters during migration's crash window, where a user can
// transiently be held by both the source and the destination and must
// still be delivered to once.
func mergeDeliveries(objs []paretomon.Object, results [][]paretomon.Delivery) []paretomon.Delivery {
	out := make([]paretomon.Delivery, len(objs))
	for i, o := range objs {
		users := []string{}
		for _, ds := range results {
			users = append(users, ds[i].Users...)
		}
		sort.Strings(users)
		n := 0
		for j, u := range users {
			if j == 0 || u != users[j-1] {
				users[n] = u
				n++
			}
		}
		out[i] = paretomon.Delivery{Object: o.Name, Users: users[:n]}
	}
	return out
}

// ringRetry runs one fleet mutation, refreshing the ring and retrying
// when any partition rejects it with a version conflict. Each attempt
// re-resolves owners and budgets from the refreshed ring, so a
// conflicted owner op lands on the NEW owner with a fresh retry
// budget. Bounded by ringRetryRounds.
func (r *Router) ringRetry(op string, fn func() error) error {
	var lastErr error
	for round := 0; round < ringRetryRounds; round++ {
		err := fn()
		if err == nil || !errors.Is(err, ErrRingVersion) {
			return err
		}
		lastErr = err
		if _, rerr := r.RefreshRing(context.Background()); rerr != nil {
			return fmt.Errorf("partition: %s hit a ring conflict and the refresh failed: %w (conflict: %w)", op, rerr, err)
		}
	}
	return lastErr
}

// ownerOp routes one mutation or read to the user's owning partition
// with retries, chasing ring flips from both directions: a version
// conflict (writes are ring-gated) refreshes the ring and re-resolves
// the owner — the user may have migrated — before trying again, and a
// 404 re-checks the ring once before it is believed. Reads are NOT
// ring-gated, so a router that missed a flip (a standby router learns
// of the active's rebalances no other way) would otherwise keep asking
// the old owner about users that moved, and report ErrUnknownUser for
// users that exist, until failover. write selects the lease-fenced
// retry loop for mutations.
func (r *Router) ownerOp(user string, write bool, fn func(ctx context.Context, p *remote) error) error {
	retry := r.withRetry
	if write {
		retry = r.withWriteRetry
	}
	attempt := func() error {
		return r.ringRetry("ownerOp", func() error {
			p := r.remotes()[r.Owner(user)]
			return retry(p, func(ctx context.Context) error { return fn(ctx, p) })
		})
	}
	err := attempt()
	var se *StatusError
	if err == nil || !errors.As(err, &se) || se.Status != http.StatusNotFound {
		return err
	}
	before := r.Owner(user)
	rctx, rcancel := context.WithTimeout(context.Background(), r.budget)
	_, rerr := r.RefreshRing(rctx)
	rcancel()
	if rerr != nil || r.Owner(user) == before {
		return err // the miss was not a stale-ring artifact
	}
	return attempt()
}

// AddUser registers a user (with initial preferences) on its owning
// partition.
func (r *Router) AddUser(name string, prefs []paretomon.Preference) error {
	req := addUserPayload{Name: name, Preferences: make([]preferencePayload, len(prefs))}
	for i, pr := range prefs {
		req.Preferences[i] = preferencePayload{Attribute: pr.Attr, Better: pr.Better, Worse: pr.Worse}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return err
	}
	return r.ownerOp(name, true, func(ctx context.Context, p *remote) error {
		return p.do(ctx, http.MethodPost, "/users", req, nil)
	})
}

// RemoveUser removes a user from its owning partition.
func (r *Router) RemoveUser(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return err
	}
	err := r.ownerOp(name, true, func(ctx context.Context, p *remote) error {
		return p.do(ctx, http.MethodDelete, "/users/"+url.PathEscape(name), nil, nil)
	})
	return mapNotFound(err, paretomon.ErrUnknownUser)
}

// AddPreference asserts a preference tuple on the user's owning
// partition.
func (r *Router) AddPreference(user, attr, better, worse string) error {
	req := preferencePayload{User: user, Attribute: attr, Better: better, Worse: worse}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return err
	}
	err := r.ownerOp(user, true, func(ctx context.Context, p *remote) error {
		return p.do(ctx, http.MethodPost, "/preferences", req, nil)
	})
	return mapNotFound(err, paretomon.ErrUnknownUser)
}

// RetractPreference retracts a previously asserted tuple on the user's
// owning partition.
func (r *Router) RetractPreference(user, attr, better, worse string) error {
	req := preferencePayload{User: user, Attribute: attr, Better: better, Worse: worse}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return err
	}
	err := r.ownerOp(user, true, func(ctx context.Context, p *remote) error {
		return p.do(ctx, http.MethodDelete, "/preferences", req, nil)
	})
	return mapNotFound(err, paretomon.ErrUnknownPreference)
}

// RemoveObject removes the object fleet-wide: every partition ingested
// it, so every partition must drop it. Partial failure returns a
// *RouteError; re-issuing is safe (partitions that already removed it
// answer 404, which the Router treats as done).
func (r *Router) RemoveObject(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return err
	}
	return r.ringRetry("RemoveObject", func() error {
		parts := r.remotes()
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		notFound := make([]bool, len(parts))
		for i, p := range parts {
			wg.Add(1)
			go func(i int, p *remote) {
				defer wg.Done()
				errs[i] = r.withWriteRetry(p, func(ctx context.Context) error {
					return p.do(ctx, http.MethodDelete, "/objects/"+url.PathEscape(name), nil, nil)
				})
				var se *StatusError
				if errs[i] != nil && errors.As(errs[i], &se) && se.Status == http.StatusNotFound {
					notFound[i] = true
				}
			}(i, p)
		}
		wg.Wait()
		// All partitions ingest every object, so 404s agree — except on a
		// retry after partial failure, where partitions that already removed
		// it answer 404 and must count as success.
		all404 := true
		for i := range parts {
			if !notFound[i] {
				all404 = false
			} else {
				errs[i] = nil
			}
		}
		if all404 {
			return fmt.Errorf("%w: %q", paretomon.ErrUnknownObject, name)
		}
		return collect("RemoveObject", errs)
	})
}

// Frontier returns the user's frontier from its owning partition.
func (r *Router) Frontier(user string) ([]string, error) {
	var reply frontierReply
	err := r.ownerOp(user, false, func(ctx context.Context, p *remote) error {
		return p.do(ctx, http.MethodGet, "/frontier/"+url.PathEscape(user), nil, &reply)
	})
	if err != nil {
		return nil, mapNotFound(err, paretomon.ErrUnknownUser)
	}
	return reply.Frontier, nil
}

// TargetsOf unions the object's current targets across the fleet —
// each partition reports its own users, the union is the community's
// C_o, sorted. Any unreachable partition fails the call (a partial
// union would silently under-report).
func (r *Router) TargetsOf(object string) ([]string, error) {
	parts := r.remotes()
	replies := make([]targetsReply, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			errs[i] = r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodGet, "/targets/"+url.PathEscape(object), nil, &replies[i])
			})
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Status == http.StatusNotFound {
				return nil, fmt.Errorf("%w: %w", paretomon.ErrUnknownObject, se)
			}
			return nil, collect("TargetsOf", errs)
		}
	}
	users := []string{}
	for _, reply := range replies {
		users = append(users, reply.Users...)
	}
	sort.Strings(users)
	n := 0
	for j, u := range users {
		if j == 0 || u != users[j-1] {
			users[n] = u
			n++
		}
	}
	return users[:n], nil
}

// Users returns the merged community membership, name-sorted (a
// Monitor reports registration order; partitions register
// independently, so the Router sorts for determinism). Unreachable
// partitions are skipped — Users has no error return — so the listing
// is best-effort under failure, like Stats.
func (r *Router) Users() []string {
	parts := r.remotes()
	lists := make([][]string, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			_ = r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodGet, "/users", nil, &lists[i])
			})
		}(i, p)
	}
	wg.Wait()
	users := []string{}
	for _, l := range lists {
		users = append(users, l...)
	}
	sort.Strings(users)
	n := 0
	for j, u := range users {
		if j == 0 || u != users[j-1] {
			users[n] = u
			n++
		}
	}
	return users[:n]
}

// Clusters concatenates each partition's clusters in partition order.
// Clustering is a per-partition work-sharing structure (users cluster
// only with co-located users), so the fleet's clustering is the
// concatenation, not a re-clustering of the union. Best-effort under
// failure, like Users.
func (r *Router) Clusters() [][]string {
	parts := r.remotes()
	lists := make([][][]string, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			_ = r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodGet, "/clusters", nil, &lists[i])
			})
		}(i, p)
	}
	wg.Wait()
	out := [][]string{}
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// Stats returns the fleet's merged work counters: Comparisons,
// Delivered and friends sum across partitions; Processed — the stream
// position — is the maximum, because every partition processes the
// whole stream; Workers sums (total ingestion goroutines fleet-wide);
// Shards stays empty (per-partition shards are reported by
// FleetStats). Unreachable partitions contribute zeros.
func (r *Router) Stats() paretomon.Stats {
	return r.FleetStats().Stats
}

// PartitionStats is one partition's slice of a FleetStats report.
type PartitionStats struct {
	Partition int    `json:"partition"`
	URL       string `json:"url"`
	// Ready reports whether the partition answered; Err carries the
	// failure when it did not (its Stats are then zero).
	Ready bool   `json:"ready"`
	Err   string `json:"error,omitempty"`
	// Stats are the partition's own counters, including its per-shard
	// breakdown.
	Stats paretomon.Stats `json:"stats"`
}

// FleetStats is the Router's /stats payload: the merged counters (see
// Stats for the merge rules) plus each partition's own view.
type FleetStats struct {
	paretomon.Stats
	Partitions []PartitionStats `json:"partitions"`
}

// FleetStats fetches every partition's /stats concurrently and merges.
func (r *Router) FleetStats() FleetStats {
	parts := r.remotes()
	out := FleetStats{Partitions: make([]PartitionStats, len(parts))}
	var wg sync.WaitGroup
	for i, p := range parts {
		out.Partitions[i] = PartitionStats{Partition: p.idx, URL: p.url}
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			err := r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodGet, "/stats", nil, &out.Partitions[i].Stats)
			})
			if err != nil {
				out.Partitions[i].Err = err.Error()
			} else {
				out.Partitions[i].Ready = true
			}
		}(i, p)
	}
	wg.Wait()
	for _, ps := range out.Partitions {
		s := ps.Stats
		out.Comparisons += s.Comparisons
		out.FilterComparisons += s.FilterComparisons
		out.VerifyComparisons += s.VerifyComparisons
		out.Delivered += s.Delivered
		out.DroppedDeliveries += s.DroppedDeliveries
		out.Workers += s.Workers
		if s.Processed > out.Processed {
			out.Processed = s.Processed
		}
	}
	return out
}

// PartitionStorage is one partition's slice of a FleetStorageStats
// report.
type PartitionStorage struct {
	Partition int    `json:"partition"`
	URL       string `json:"url"`
	Err       string `json:"error,omitempty"`
	// Storage is the partition's own store footprint (nil when the
	// partition was unreachable or runs without a store).
	Storage *paretomon.StoreStats `json:"storage,omitempty"`
}

// FleetStorageStats aggregates the fleet's storage footprint.
type FleetStorageStats struct {
	Partitions         []PartitionStorage `json:"partitions"`
	TotalSegments      int                `json:"total_segments"`
	TotalWALBytes      int64              `json:"total_wal_bytes"`
	TotalSnapshots     int                `json:"total_snapshots"`
	TotalSnapshotBytes int64              `json:"total_snapshot_bytes"`
}

// StorageStats fetches every partition's /storage/stats concurrently
// and totals the footprint. Partitions without a store (or down)
// report an error entry and contribute nothing to the totals.
func (r *Router) StorageStats() FleetStorageStats {
	parts := r.remotes()
	out := FleetStorageStats{Partitions: make([]PartitionStorage, len(parts))}
	var wg sync.WaitGroup
	for i, p := range parts {
		out.Partitions[i] = PartitionStorage{Partition: p.idx, URL: p.url}
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			var st paretomon.StoreStats
			err := r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodGet, "/storage/stats", nil, &st)
			})
			if err != nil {
				out.Partitions[i].Err = err.Error()
				return
			}
			out.Partitions[i].Storage = &st
		}(i, p)
	}
	wg.Wait()
	for _, ps := range out.Partitions {
		if ps.Storage == nil {
			continue
		}
		out.TotalSegments += ps.Storage.Segments
		out.TotalWALBytes += ps.Storage.WALBytes
		out.TotalSnapshots += ps.Storage.Snapshots
		out.TotalSnapshotBytes += ps.Storage.SnapshotBytes
	}
	return out
}

// Snapshot forces a checked snapshot on every partition (POST
// /snapshot fleet-wide). Partial failure returns a *RouteError; the
// partitions that succeeded keep their snapshots.
func (r *Router) Snapshot() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	parts := r.remotes()
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			errs[i] = r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodPost, "/snapshot", nil, nil)
			})
		}(i, p)
	}
	wg.Wait()
	return collect("Snapshot", errs)
}
