package partition

import (
	"fmt"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("u%d", i)
	}
	return out
}

// TestPlanDeterminism: two plans with identical parameters are the same
// function — the contract that lets a router and its -partition i/n
// processes agree on ownership without coordination.
func TestPlanDeterminism(t *testing.T) {
	a, err := NewPlan(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(5, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range names(2000) {
		if a.Owner(u) != b.Owner(u) {
			t.Fatalf("owner(%q) differs: %d vs %d", u, a.Owner(u), b.Owner(u))
		}
	}
	if a.Partitions() != 5 || a.VNodes() != DefaultVNodes {
		t.Fatalf("plan params: %d/%d", a.Partitions(), a.VNodes())
	}
}

// TestPlanCoverage: every user lands on exactly one partition, every
// partition gets a plausible share (no partition starves).
func TestPlanCoverage(t *testing.T) {
	p, err := NewPlan(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	users := names(4000)
	buckets := p.Assign(users)
	total := 0
	for i, b := range buckets {
		total += len(b)
		if len(b) == 0 {
			t.Fatalf("partition %d owns no users", i)
		}
		// 64 vnodes keeps imbalance modest; allow a wide margin so the
		// test pins behavior, not luck.
		if len(b) < len(users)/4/3 || len(b) > len(users)/4*3 {
			t.Errorf("partition %d owns %d of %d users — implausible skew", i, len(b), len(users))
		}
	}
	if total != len(users) {
		t.Fatalf("assigned %d of %d users", total, len(users))
	}
	for i, b := range buckets {
		for _, u := range b {
			if p.Owner(u) != i {
				t.Fatalf("Assign placed %q on %d but Owner says %d", u, i, p.Owner(u))
			}
		}
	}
}

// TestPlanStability: growing the fleet n → n+1 must relocate only a
// minority of users — the property consistent hashing buys over plain
// modulo (which would move ~n/(n+1) of them).
func TestPlanStability(t *testing.T) {
	p3, err := NewPlan(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := NewPlan(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	users := names(4000)
	moved := 0
	for _, u := range users {
		if p3.Owner(u) != p4.Owner(u) {
			moved++
		}
	}
	// Expect ~1/4 moved; fail only if over half did.
	if moved > len(users)/2 {
		t.Fatalf("%d of %d users moved growing 3→4 partitions", moved, len(users))
	}
	if moved == 0 {
		t.Fatal("no users moved growing 3→4 partitions — the new partition owns nothing")
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(0, 0); err == nil {
		t.Fatal("NewPlan(0, 0) should fail")
	}
	if _, err := NewPlan(-1, 16); err == nil {
		t.Fatal("NewPlan(-1, 16) should fail")
	}
}
