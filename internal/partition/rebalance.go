package partition

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Online rebalancing and router HA.
//
// The migration primitive rests on one property of the paper's model: a
// user's frontier is a pure function of (object stream prefix,
// asserted preference tuples). Two partitions that have processed the
// same stream prefix therefore agree byte-for-byte on what any user's
// frontier would be — so moving a user is: freeze writes (the Router's
// own mutation mutex), export the user's tuples at the source's stream
// position, replay them through the destination's live AddUser path,
// flip ownership by committing a new ring version, and delete the
// source copy. Every step is idempotent or guarded by the ring-version
// barrier, so a crash anywhere leaves a state Reconcile converges from
// — see the failure playbook in docs/PARTITIONING.md.

// DefaultMigrateBatch is how many users move per freeze window during
// Rebalance when RebalanceOptions.BatchSize is zero: small enough that
// one window stalls writes for milliseconds, large enough that ring
// versions do not churn per-user.
const DefaultMigrateBatch = 32

// RebalanceEvent is one observable step of a migration or rebalance,
// delivered synchronously to Config.Observe as the step completes.
// Chaos tests use it as a deterministic crash hook; the CLI prints it
// as progress.
type RebalanceEvent struct {
	// Phase is the step: "ring-bootstrap", "ring-extend", "object-sync",
	// "reconcile", "export", "import", "commit", "delete", "final".
	Phase string
	// From and To are partition indices for migration phases.
	From, To int
	// Users is the batch being migrated, when the phase moves users.
	Users []string
	// Version is the ring version after the step, when it changed.
	Version uint64
	// Detail carries phase-specific context (a partition URL, a count).
	Detail string
}

// event delivers e to the observer, when one is configured.
func (r *Router) event(e RebalanceEvent) {
	if r.observe != nil {
		r.observe(e)
	}
}

// ---------------------------------------------------------------------
// Ring agreement.

// installRing adopts rg when it is newer than the installed one,
// rebuilding the partition set from its URLs (clients are reused per
// URL, so connection pools survive a flip).
func (r *Router) installRing(rg *Ring) {
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	if r.ring != nil && rg.Version <= r.ring.Version {
		return
	}
	byURL := make(map[string]*remote, len(r.parts))
	for _, p := range r.parts {
		byURL[p.url] = p
	}
	parts := make([]*remote, len(rg.URLs))
	for i, u := range rg.URLs {
		base := strings.TrimRight(u, "/")
		if ex, ok := byURL[base]; ok {
			parts[i] = &remote{client: ex.client, idx: i, url: base}
		} else {
			c := newClient(u, r.hc, &r.ringVer)
			parts[i] = &remote{client: c, idx: i, url: c.base}
		}
	}
	r.parts = parts
	r.ring = rg
	r.ringVer.Store(rg.Version)
}

// RefreshRing fetches every partition's installed ring, adopts the
// newest (including the Router's own), and pushes it to partitions
// that are behind, best-effort. Returns the fleet's agreed ring, nil
// when no partition has one installed (legacy mode).
func (r *Router) RefreshRing(ctx context.Context) (*Ring, error) {
	parts := r.remotes()
	rings := make([]*Ring, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			var raw json.RawMessage
			if err := p.do(ctx, http.MethodGet, "/ring", nil, &raw); err != nil {
				return // down or 404: contributes nothing
			}
			if rg, err := DecodeRing(raw); err == nil {
				rings[i] = rg
			}
		}(i, p)
	}
	wg.Wait()
	best := r.Ring()
	for _, rg := range rings {
		if rg != nil && (best == nil || rg.Version > best.Version) {
			best = rg
		}
	}
	if best == nil {
		return nil, nil
	}
	r.installRing(best)
	payload := json.RawMessage(best.Encode())
	for i, p := range parts {
		if rings[i] == nil || rings[i].Version < best.Version {
			_ = p.do(ctx, http.MethodPut, "/ring", payload, nil)
		}
	}
	return best, nil
}

// commitRing is the ownership barrier: install rg locally (routing and
// header stamping flip immediately), then push it to every partition —
// the new set and any partition the previous ring named that dropped
// out (it must learn it retired). A push failure returns an error with
// the fleet split across versions; every path that commits rings is
// re-runnable and RefreshRing heals stragglers, so the caller retries
// rather than unwinding.
func (r *Router) commitRing(rg *Ring) error {
	prev := r.remotes()
	r.installRing(rg)
	seen := make(map[string]bool)
	var all []*remote
	for _, p := range r.remotes() {
		if !seen[p.url] {
			seen[p.url] = true
			all = append(all, p)
		}
	}
	for _, p := range prev {
		if !seen[p.url] {
			seen[p.url] = true
			all = append(all, p)
		}
	}
	payload := json.RawMessage(rg.Encode())
	errs := make([]error, len(all))
	var wg sync.WaitGroup
	for i, p := range all {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			errs[i] = r.withWriteRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodPut, "/ring", payload, nil)
			})
		}(i, p)
	}
	wg.Wait()
	return collect("commitRing", errs)
}

// ensureRingLocked returns the fleet's agreed ring, bootstrapping
// version 1 over the Router's current topology when no partition has
// one yet. Caller holds r.mu.
func (r *Router) ensureRingLocked(ctx context.Context) (*Ring, error) {
	rg, err := r.RefreshRing(ctx)
	if err != nil || rg != nil {
		return rg, err
	}
	parts := r.remotes()
	urls := make([]string, len(parts))
	for i, p := range parts {
		urls[i] = p.url
	}
	rg, err = NewRing(1, len(parts), r.plan.VNodes(), urls, nil)
	if err != nil {
		return nil, err
	}
	if err := r.commitRing(rg); err != nil {
		return nil, err
	}
	r.event(RebalanceEvent{Phase: "ring-bootstrap", Version: rg.Version})
	return rg, nil
}

// ---------------------------------------------------------------------
// Router HA lease.

// leaseState is the Router's cached view of the fleet write lease. The
// renewal clock is local and monotonic — only partition 0's clock
// judges expiry; this side merely renews early (a third of the TTL)
// and fences its own mutations against the conservative expiry (see
// leaseExpiry). renewed is anchored BEFORE the renewal request went
// out, so it under-estimates the grant's remaining life; ttl is the
// TTL the server actually granted (it may clamp the request).
type leaseState struct {
	mu      sync.Mutex
	held    bool
	renewed time.Time
	ttl     time.Duration
	epoch   uint64
}

type leasePayload struct {
	ID        string `json:"id"`
	TTLMillis int64  `json:"ttl_ms"`
}

type leaseGrant struct {
	ID        string `json:"id"`
	Epoch     uint64 `json:"epoch"`
	TTLMillis int64  `json:"ttl_ms"`
}

// LeaseEpoch returns the fencing epoch of the lease this Router holds
// (0 when HA is disabled or the lease is not held).
func (r *Router) LeaseEpoch() uint64 {
	r.lease.mu.Lock()
	defer r.lease.mu.Unlock()
	if !r.lease.held {
		return 0
	}
	return r.lease.epoch
}

// ensureLease acquires or renews the fleet write lease before a
// mutation. A no-op unless Config.RouterID enabled HA. Partition 0
// arbitrates (a fleet write needs every partition up anyway, so the
// lease adds no availability constraint); ErrNotLeaseHolder means
// another router holds it and this one must stand by. Caller holds
// r.mu.
func (r *Router) ensureLease() error {
	if r.leaseID == "" {
		return nil
	}
	r.lease.mu.Lock()
	defer r.lease.mu.Unlock()
	ttl := r.lease.ttl
	if ttl <= 0 {
		ttl = r.leaseTTL
	}
	if r.lease.held && time.Since(r.lease.renewed) < ttl/3 {
		return nil
	}
	p0 := r.remotes()[0]
	req := leasePayload{ID: r.leaseID, TTLMillis: r.leaseTTL.Milliseconds()}
	var grant leaseGrant
	// Anchor the renewal clock before each attempt goes out: the server
	// stamps its expiry when it processes the POST, so any local instant
	// at or before that moment under-estimates the grant's remaining
	// life — the safe direction for the mutation fence (leaseExpiry).
	var t0 time.Time
	err := r.withRetry(p0, func(ctx context.Context) error {
		t0 = time.Now()
		return p0.do(ctx, http.MethodPost, "/lease", req, &grant)
	})
	if err != nil {
		r.lease.held = false
		var se *StatusError
		if errors.As(err, &se) && se.Status == http.StatusConflict {
			return fmt.Errorf("%w: %s", ErrNotLeaseHolder, se.Msg)
		}
		return err
	}
	// The grant echoes the effective TTL (the server may clamp an
	// oversized request); the fence must be sized from what was granted,
	// never from what was asked.
	granted := time.Duration(grant.TTLMillis) * time.Millisecond
	if granted <= 0 || granted > r.leaseTTL {
		granted = r.leaseTTL
	}
	r.lease.held = true
	r.lease.renewed = t0
	r.lease.ttl = granted
	r.lease.epoch = grant.Epoch
	return nil
}

// leaseExpiry returns the earliest instant the held write lease could
// lapse on the arbiter's clock (the renewal anchor plus the granted
// TTL — conservative by construction). ok is false when HA is off or
// the lease is not currently held.
func (r *Router) leaseExpiry() (expiry time.Time, ok bool) {
	if r.leaseID == "" {
		return time.Time{}, false
	}
	r.lease.mu.Lock()
	defer r.lease.mu.Unlock()
	if !r.lease.held {
		return time.Time{}, false
	}
	ttl := r.lease.ttl
	if ttl <= 0 {
		ttl = r.leaseTTL
	}
	return r.lease.renewed.Add(ttl), true
}

// releaseLease steps down (Close): expire our own grant so a standby
// takes over without waiting out the TTL. Best-effort.
func (r *Router) releaseLease() {
	if r.leaseID == "" {
		return
	}
	r.lease.mu.Lock()
	held := r.lease.held
	r.lease.held = false
	r.lease.mu.Unlock()
	if !held {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	p0 := r.remotes()[0]
	_ = p0.do(ctx, http.MethodDelete, "/lease?id="+url.QueryEscape(r.leaseID), nil, nil)
}

// ---------------------------------------------------------------------
// Migration.

type migrateExportPayload struct {
	Users []string `json:"users"`
}

// Migrate moves the named users from partition `from` to partition
// `to` under the fleet write freeze: export at the source's stream
// position, import through the destination's live lifecycle paths,
// commit the ownership flip as a new ring version, then retire the
// source copies. Re-running after any failure converges: imports skip
// users the destination holds, the commit is monotone, deletes treat
// 404 as done — and Reconcile repairs the crash windows in between.
func (r *Router) Migrate(users []string, from, to int) error {
	if len(users) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return err
	}
	ctx := context.Background()
	if r.Ring() == nil {
		if _, err := r.ensureRingLocked(ctx); err != nil {
			return err
		}
	}
	return r.migrateLocked(ctx, users, from, to)
}

// migrateLocked is Migrate's body; caller holds r.mu and has ensured a
// ring is installed.
func (r *Router) migrateLocked(ctx context.Context, users []string, from, to int) error {
	cur := r.Ring()
	parts := r.remotes()
	if from < 0 || from >= len(parts) || to < 0 || to >= len(parts) || from == to {
		return fmt.Errorf("partition: bad migration %d → %d over %d partitions", from, to, len(parts))
	}
	for _, u := range users {
		if o := cur.Owner(u); o != from {
			return fmt.Errorf("partition: user %q is owned by partition %d, not %d", u, o, from)
		}
	}
	src, dst := parts[from], parts[to]

	// Ship the snapshot slice: source streams straight into the
	// destination, both ends checked against the shared watermark. The
	// stream runs under the migration timeout, not the per-call retry
	// budget — a large user batch legitimately takes longer than one
	// retry window to ship.
	cctx, cancel := context.WithTimeout(ctx, r.migrateTO)
	defer cancel()
	body, err := src.getStream(cctx, http.MethodPost, "/migrate/export", migrateExportPayload{Users: users})
	if err != nil {
		return fmt.Errorf("partition: exporting %d user(s) from partition %d: %w", len(users), from, err)
	}
	var imported struct {
		Added   int `json:"added"`
		Skipped int `json:"skipped"`
	}
	err = dst.postStream(cctx, "/migrate/import", body, &imported)
	body.Close()
	if err != nil {
		return fmt.Errorf("partition: importing %d user(s) into partition %d: %w", len(users), to, err)
	}
	r.event(RebalanceEvent{Phase: "import", From: from, To: to, Users: users,
		Detail: fmt.Sprintf("added %d, skipped %d", imported.Added, imported.Skipped)})

	// Commit: the new ring version is the ownership barrier — from this
	// point reads and writes for these users route to the destination,
	// and the source's stale copies are unreachable garbage.
	succ := cur.successor()
	for _, u := range users {
		if succ.PlanOwner(u) == to {
			delete(succ.Moves, u)
		} else {
			succ.Moves[u] = to
		}
	}
	if err := r.commitRing(succ); err != nil {
		return fmt.Errorf("partition: committing ring %d: %w", succ.Version, err)
	}
	r.event(RebalanceEvent{Phase: "commit", From: from, To: to, Users: users, Version: succ.Version})

	// Retire the source copies; 404 means a previous run already did.
	for _, u := range users {
		err := r.withWriteRetry(src, func(ctx context.Context) error {
			return src.do(ctx, http.MethodDelete, "/users/"+url.PathEscape(u), nil, nil)
		})
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Status == http.StatusNotFound {
				continue
			}
			return fmt.Errorf("partition: retiring user %q from partition %d: %w", u, from, err)
		}
	}
	r.event(RebalanceEvent{Phase: "delete", From: from, To: to, Users: users})
	return nil
}

// userLists fetches every partition's user list with per-partition
// retries and STRICT failure semantics: any partition that stays
// unreachable past its budget fails the whole call. Rebalance and
// Reconcile derive migration work from the result — the best-effort
// Users() would let a down partition contribute an empty list, and its
// users would silently drop out of the plan (never pinned, never
// migrated, stranded on a retired partition at scale-in).
func (r *Router) userLists(op string, parts []*remote) ([][]string, error) {
	lists := make([][]string, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			errs[i] = r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodGet, "/users", nil, &lists[i])
			})
		}(i, p)
	}
	wg.Wait()
	if err := collect(op, errs); err != nil {
		return nil, err
	}
	return lists, nil
}

// ---------------------------------------------------------------------
// Reconcile.

// ReconcileReport summarizes a Reconcile pass.
type ReconcileReport struct {
	// Removed counts user copies deleted from non-owner partitions.
	Removed int `json:"removed"`
	// Repinned counts users whose ring entry was repointed at the one
	// partition actually holding them (the owner had no copy).
	Repinned int `json:"repinned"`
}

// Reconcile restores the exactly-one-owner invariant after a crash
// mid-migration: every user held by a partition the ring does not
// assign them to loses that copy, and a user whose assigned owner
// holds no copy is re-pinned to the partition that does (rolling the
// interrupted step back or forward, whichever the ring already
// committed). A no-op on a healthy fleet, and on a fleet that never
// rebalanced.
func (r *Router) Reconcile(ctx context.Context) (ReconcileReport, error) {
	var rep ReconcileReport
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLease(); err != nil {
		return rep, err
	}
	if _, err := r.RefreshRing(ctx); err != nil {
		return rep, err
	}
	cur := r.Ring()
	if cur == nil {
		return rep, nil // legacy mode: the static plan is the single source of truth
	}
	parts := r.remotes()
	lists, err := r.userLists("Reconcile", parts)
	if err != nil {
		return rep, err
	}
	holders := make(map[string][]int)
	for i, l := range lists {
		for _, u := range l {
			holders[u] = append(holders[u], i) // ascending partition order
		}
	}

	// Pass 1: a user whose assigned owner holds no copy (crash after
	// the source delete of an uncommitted flip — not a window our
	// ordering produces, but the invariant is cheap to defend) is
	// re-pinned to their lowest-indexed holder.
	repins := make(map[string]int)
	for u, hs := range holders {
		owner := cur.Owner(u)
		held := false
		for _, h := range hs {
			if h == owner {
				held = true
				break
			}
		}
		if !held {
			repins[u] = hs[0]
		}
	}
	if len(repins) > 0 {
		succ := cur.successor()
		for u, idx := range repins {
			if succ.PlanOwner(u) == idx {
				delete(succ.Moves, u)
			} else {
				succ.Moves[u] = idx
			}
		}
		if err := r.commitRing(succ); err != nil {
			return rep, err
		}
		cur = succ
		rep.Repinned = len(repins)
		r.event(RebalanceEvent{Phase: "reconcile", Version: succ.Version,
			Detail: fmt.Sprintf("repinned %d user(s)", len(repins))})
	}

	// Pass 2: delete every copy the ring does not sanction.
	users := make([]string, 0, len(holders))
	for u := range holders {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		owner := cur.Owner(u)
		for _, h := range holders[u] {
			if h == owner {
				continue
			}
			p := parts[h]
			err := r.withWriteRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodDelete, "/users/"+url.PathEscape(u), nil, nil)
			})
			if err != nil {
				var se *StatusError
				if errors.As(err, &se) && se.Status == http.StatusNotFound {
					continue
				}
				return rep, fmt.Errorf("partition: reconcile removing %q from partition %d: %w", u, h, err)
			}
			rep.Removed++
		}
	}
	if rep.Removed > 0 {
		r.event(RebalanceEvent{Phase: "reconcile", Detail: fmt.Sprintf("removed %d stray cop(ies)", rep.Removed)})
	}
	return rep, nil
}

// ---------------------------------------------------------------------
// Rebalance.

// RebalanceOptions tunes a Rebalance run.
type RebalanceOptions struct {
	// BatchSize is how many users move per freeze window; 0 selects
	// DefaultMigrateBatch.
	BatchSize int `json:"batch_size"`
}

// RebalanceReport summarizes a completed Rebalance.
type RebalanceReport struct {
	FromParts int `json:"from_parts"`
	ToParts   int `json:"to_parts"`
	// UsersMoved and Batches count completed migrations; Stripped is
	// what the pre-migration Reconcile removed (a fresh partition's
	// construction community).
	UsersMoved int `json:"users_moved"`
	Batches    int `json:"batches"`
	Stripped   int `json:"stripped"`
	// ObjectsSynced counts objects shipped to partitions that were
	// behind the fleet's stream position.
	ObjectsSynced int `json:"objects_synced"`
	// RingVersion is the final committed ring version.
	RingVersion uint64 `json:"ring_version"`
	Millis      int64  `json:"millis"`
}

// unionURLs merges the installed ring's URL list with the rebalance
// target: one must be a prefix of the other (partition indices are
// stable identities — scale-out appends, scale-in truncates; swapping
// a URL mid-list would silently reassign another partition's WAL).
func unionURLs(a, b []string) ([]string, error) {
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	for i := range short {
		if strings.TrimRight(short[i], "/") != strings.TrimRight(long[i], "/") {
			return nil, fmt.Errorf("partition: rebalance would change partition %d from %q to %q; only trailing partitions may be added or removed", i, long[i], short[i])
		}
	}
	out := make([]string, len(long))
	for i, u := range long {
		out[i] = strings.TrimRight(u, "/")
	}
	return out, nil
}

// Rebalance moves a live fleet to the given partition URL list —
// scale-out (the current list plus new partitions, freshly booted and
// ready) or scale-in (a prefix of the current list) — while writers
// keep writing. The freeze windows are per-batch: setup (ring
// agreement, object sync) and each user batch hold the write mutex for
// one round-trip's worth of work, and traffic interleaves between
// them. Re-running an interrupted Rebalance with the same target
// converges: every phase derives its work from the installed ring and
// the fleet's actual holdings, not from in-memory progress.
func (r *Router) Rebalance(ctx context.Context, urls []string, opts RebalanceOptions) (*RebalanceReport, error) {
	if len(urls) == 0 {
		return nil, errors.New("partition: rebalance needs at least one partition URL")
	}
	if !r.rebalancing.CompareAndSwap(false, true) {
		return nil, errors.New("partition: a rebalance is already running")
	}
	defer r.rebalancing.Store(false)
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultMigrateBatch
	}
	norm := make([]string, len(urls))
	for i, u := range urls {
		norm[i] = strings.TrimRight(u, "/")
	}
	start := time.Now()
	rep := &RebalanceReport{ToParts: len(norm)}

	// Phase A (one freeze window): agree on a ring, extend its URL set
	// to old ∪ new so every partition — retiring ones included — keeps
	// a stable index, and bring the newcomers to the fleet's object
	// position. Sync happens inside the same window that admits the new
	// partitions to the fan-out set, so no write can land in between
	// and break the positional skip.
	r.mu.Lock()
	err := func() error {
		if err := r.ensureLease(); err != nil {
			return err
		}
		cur, err := r.ensureRingLocked(ctx)
		if err != nil {
			return err
		}
		rep.FromParts = cur.Parts
		trans, err := unionURLs(cur.URLs, norm)
		if err != nil {
			return err
		}
		if len(trans) != len(cur.URLs) {
			succ, err := NewRing(cur.Version+1, cur.Parts, cur.VNodes, trans, cur.Moves)
			if err != nil {
				return err
			}
			if err := r.commitRing(succ); err != nil {
				return err
			}
			r.event(RebalanceEvent{Phase: "ring-extend", Version: succ.Version,
				Detail: fmt.Sprintf("%d urls", len(trans))})
		}
		synced, err := r.objectSyncLocked()
		rep.ObjectsSynced = synced
		return err
	}()
	r.mu.Unlock()
	if err != nil {
		return rep, err
	}

	// Strip: a freshly booted partition carries whatever community it
	// was constructed with; the ring says it owns none of them yet.
	// Reconcile deletes the unsanctioned copies (and doubles as crash
	// repair when this run is a retry).
	rec, err := r.Reconcile(ctx)
	if err != nil {
		return rep, err
	}
	rep.Stripped = rec.Removed

	// Phase B (one freeze window): pin every user whose owner under the
	// target plan differs from their current owner, and commit the
	// target plan in the same ring — ownership does not move yet, the
	// pins see to that, but from here each migration batch only has to
	// erase its own pins.
	groups := make(map[[2]int][]string)
	r.mu.Lock()
	err = func() error {
		if err := r.ensureLease(); err != nil {
			return err
		}
		cur := r.Ring()
		newPlan, err := NewPlan(len(norm), cur.VNodes)
		if err != nil {
			return err
		}
		// The pin set MUST come from a strict fleet-wide listing: if any
		// partition is unreachable here, abort rather than plan around an
		// empty list — a down partition's users would never be pinned or
		// migrated, and a scale-in would commit a final ring that strands
		// them on a retired partition with no error (the no-lost-users
		// guarantee this whole dance exists to keep).
		lists, err := r.userLists("Rebalance", r.remotes())
		if err != nil {
			return err
		}
		pins := make(map[string]int)
		for _, l := range lists {
			for _, u := range l {
				if _, seen := pins[u]; seen {
					continue // transient double-holder; one pin suffices
				}
				curOwner := cur.Owner(u)
				newOwner := newPlan.Owner(u)
				if curOwner != newOwner {
					pins[u] = curOwner
					key := [2]int{curOwner, newOwner}
					groups[key] = append(groups[key], u)
				}
			}
		}
		if cur.Parts == len(norm) && len(pins) == 0 && len(cur.Moves) == 0 {
			return nil // already on the target plan (a resumed run past phase C)
		}
		succ, err := NewRing(cur.Version+1, len(norm), cur.VNodes, cur.URLs, pins)
		if err != nil {
			return err
		}
		if err := r.commitRing(succ); err != nil {
			return err
		}
		r.event(RebalanceEvent{Phase: "ring-plan", Version: succ.Version,
			Detail: fmt.Sprintf("%d parts, %d pinned", len(norm), len(pins))})
		return nil
	}()
	r.mu.Unlock()
	if err != nil {
		return rep, err
	}

	// Phase C: drain the pins, one bounded batch per freeze window, so
	// write traffic interleaves with the migration.
	keys := make([][2]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		users := groups[key]
		sort.Strings(users)
		for len(users) > 0 {
			n := batch
			if n > len(users) {
				n = len(users)
			}
			chunk := users[:n]
			users = users[n:]
			r.mu.Lock()
			err := func() error {
				if err := r.ensureLease(); err != nil {
					return err
				}
				return r.migrateLocked(ctx, chunk, key[0], key[1])
			}()
			r.mu.Unlock()
			if err != nil {
				return rep, err
			}
			rep.UsersMoved += n
			rep.Batches++
		}
	}

	// Phase D (one freeze window): shrink the URL list to the target —
	// retiring partitions drop out of the fan-out — and settle on the
	// clean plan-only ring.
	r.mu.Lock()
	err = func() error {
		if err := r.ensureLease(); err != nil {
			return err
		}
		cur := r.Ring()
		if len(cur.Moves) != 0 {
			return fmt.Errorf("partition: %d pin(s) remain after migration; re-run rebalance", len(cur.Moves))
		}
		if len(cur.URLs) == len(norm) {
			rep.RingVersion = cur.Version
			return nil
		}
		succ, err := NewRing(cur.Version+1, len(norm), cur.VNodes, norm, nil)
		if err != nil {
			return err
		}
		if err := r.commitRing(succ); err != nil {
			return err
		}
		rep.RingVersion = succ.Version
		r.event(RebalanceEvent{Phase: "final", Version: succ.Version})
		return nil
	}()
	r.mu.Unlock()
	rep.Millis = time.Since(start).Milliseconds()
	return rep, err
}

// objectSyncLocked brings every partition to the fleet's maximum
// object-stream position by piping the most advanced partition's
// registry export into each one that is behind. Caller holds r.mu (no
// concurrent writers). Returns objects applied across all targets.
func (r *Router) objectSyncLocked() (int, error) {
	parts := r.remotes()
	counts := make([]int, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *remote) {
			defer wg.Done()
			var reply struct {
				Count int `json:"count"`
			}
			errs[i] = r.withRetry(p, func(ctx context.Context) error {
				return p.do(ctx, http.MethodGet, "/objects/count", nil, &reply)
			})
			counts[i] = reply.Count
		}(i, p)
	}
	wg.Wait()
	if err := collect("objectSync", errs); err != nil {
		return 0, err
	}
	src := 0
	for i, c := range counts {
		if c > counts[src] {
			src = i
		}
	}
	applied := 0
	for i, p := range parts {
		if counts[i] == counts[src] {
			continue
		}
		// A full registry sync is a bulk stream: bound it by the
		// migration timeout, not the per-call retry budget.
		ctx, cancel := context.WithTimeout(context.Background(), r.migrateTO)
		body, err := parts[src].getStream(ctx, http.MethodGet, "/migrate/objects", nil)
		if err != nil {
			cancel()
			return applied, fmt.Errorf("partition: exporting objects from partition %d: %w", src, err)
		}
		var reply struct {
			Applied int `json:"applied"`
		}
		err = p.postStream(ctx, "/migrate/objects", body, &reply)
		body.Close()
		cancel()
		if err != nil {
			return applied, fmt.Errorf("partition: syncing objects to partition %d: %w", i, err)
		}
		applied += reply.Applied
		r.event(RebalanceEvent{Phase: "object-sync", From: src, To: i,
			Detail: fmt.Sprintf("%d object(s)", reply.Applied)})
	}
	return applied, nil
}
