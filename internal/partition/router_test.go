package partition_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	paretomon "repro"
	"repro/internal/partition"
	"repro/internal/server"
)

// testSchema builds a small community whose users disagree enough that
// frontiers differ per user: three attributes with five values each,
// user i preferring a chain rotated by i.
func testCommunity(t *testing.T, users int) *paretomon.Community {
	t.Helper()
	attrs := []string{"a", "b", "c"}
	com := paretomon.NewCommunity(paretomon.NewSchema(attrs...))
	vals := []string{"v0", "v1", "v2", "v3", "v4"}
	for i := 0; i < users; i++ {
		u, err := com.AddUser(fmt.Sprintf("u%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for d, attr := range attrs {
			// Rotate the chain per (user, attribute) so profiles differ.
			chain := make([]string, len(vals))
			for j := range vals {
				chain[j] = vals[(j+i+d)%len(vals)]
			}
			if err := u.PreferChain(attr, chain...); err != nil {
				t.Fatal(err)
			}
		}
	}
	return com
}

// stream generates count deterministic objects over the test schema.
func stream(count int) []paretomon.Object {
	vals := []string{"v0", "v1", "v2", "v3", "v4"}
	out := make([]paretomon.Object, count)
	seed := uint64(42)
	for i := range out {
		row := make([]string, 3)
		for d := range row {
			seed = seed*6364136223846793005 + 1442695040888963407
			row[d] = vals[seed>>33%uint64(len(vals))]
		}
		out[i] = paretomon.Object{Name: fmt.Sprintf("o%d", i+1), Values: row}
	}
	return out
}

// fleet is a router-fronted set of in-process partitions plus the
// single-monitor reference fed the same community.
type fleet struct {
	router *partition.Router
	ref    *paretomon.Monitor
	mons   []*paretomon.Monitor
	https  []*httptest.Server
}

func (f *fleet) close() {
	for _, s := range f.https {
		s.Close()
	}
	for _, m := range f.mons {
		_ = m.Close()
	}
	_ = f.ref.Close()
}

// startFleet carves the community into n consistent-hash slices, serves
// each from its own in-process HTTP server, and fronts them with a
// Router. Baseline algorithm so work counters partition exactly.
func startFleet(t *testing.T, com *paretomon.Community, n int) *fleet {
	t.Helper()
	opts := []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmBaseline)}
	ref, err := paretomon.NewMonitor(com, opts...)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.NewPlan(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{ref: ref}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		sub := com.Subset(func(name string) bool { return plan.Owner(name) == i })
		if sub.Len() == 0 {
			t.Fatalf("partition %d owns no users — grow the test community", i)
		}
		mon, err := paretomon.NewMonitor(sub, opts...)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(server.New(mon))
		f.mons = append(f.mons, mon)
		f.https = append(f.https, hs)
		urls[i] = hs.URL
	}
	f.router, err = partition.New(partition.Config{
		URLs:          urls,
		RetryBudget:   5 * time.Second,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// assertIdentical checks the router and the reference agree on every
// frontier and every object's targets.
func assertIdentical(t *testing.T, f *fleet, objects int) {
	t.Helper()
	for _, u := range f.ref.Users() {
		want, err1 := f.ref.Frontier(u)
		got, err2 := f.router.Frontier(u)
		if err1 != nil || err2 != nil {
			t.Fatalf("frontier(%s): %v / %v", u, err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("frontier(%s): reference %v, router %v", u, want, got)
		}
	}
	for i := 1; i <= objects; i++ {
		name := fmt.Sprintf("o%d", i)
		want, err1 := f.ref.TargetsOf(name)
		got, err2 := f.router.TargetsOf(name)
		if err1 != nil || err2 != nil {
			t.Fatalf("targets(%s): %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("targets(%s): reference %v, router %v", name, want, got)
		}
	}
}

// TestRouterMatchesSingleMonitor: the tentpole identity — a 3-partition
// fleet behind the Router delivers, frontier-for-frontier and
// counter-for-counter, what one monitor over the whole community does.
func TestRouterMatchesSingleMonitor(t *testing.T) {
	com := testCommunity(t, 30)
	f := startFleet(t, com, 3)
	defer f.close()

	objs := stream(120)
	for lo := 0; lo < len(objs); lo += 7 {
		hi := min(lo+7, len(objs))
		want, err1 := f.ref.AddBatch(objs[lo:hi])
		got, err2 := f.router.AddBatch(objs[lo:hi])
		if err1 != nil || err2 != nil {
			t.Fatalf("batch [%d,%d): %v / %v", lo, hi, err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batch [%d,%d): deliveries differ:\nref:    %v\nrouter: %v", lo, hi, want, got)
		}
	}
	assertIdentical(t, f, len(objs))

	// Baseline work partitions exactly: summed counters equal the
	// reference's, and the stream position is the max, not the sum.
	rs, ms := f.router.Stats(), f.ref.Stats()
	if rs.Comparisons != ms.Comparisons || rs.Delivered != ms.Delivered {
		t.Errorf("merged stats: router %+v, reference %+v", rs, ms)
	}
	if rs.Processed != ms.Processed {
		t.Errorf("Processed should be the per-partition max %d, got %d", ms.Processed, rs.Processed)
	}

	// Merged listings: same membership (sorted).
	users := f.router.Users()
	if len(users) != com.Len() {
		t.Fatalf("router lists %d users, want %d", len(users), com.Len())
	}
}

// TestRouterClustersMerge: with a clustering engine, the fleet's
// clusters are the concatenation of each partition's — covering every
// user exactly once.
func TestRouterClustersMerge(t *testing.T) {
	com := testCommunity(t, 30)
	plan, err := partition.NewPlan(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var https []*httptest.Server
	var mons []*paretomon.Monitor
	defer func() {
		for _, s := range https {
			s.Close()
		}
		for _, m := range mons {
			_ = m.Close()
		}
	}()
	urls := make([]string, 3)
	for i := range urls {
		sub := com.Subset(func(name string) bool { return plan.Owner(name) == i })
		mon, err := paretomon.NewMonitor(sub, paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerify))
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(server.New(mon))
		mons = append(mons, mon)
		https = append(https, hs)
		urls[i] = hs.URL
	}
	rt, err := partition.New(partition.Config{URLs: urls})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	clusters := rt.Clusters()
	for _, cl := range clusters {
		for _, u := range cl {
			if seen[u] {
				t.Fatalf("user %s appears in two clusters", u)
			}
			seen[u] = true
		}
	}
	if len(seen) != com.Len() {
		t.Fatalf("clusters cover %d users, want %d", len(seen), com.Len())
	}
	wantLen := 0
	for _, m := range mons {
		wantLen += len(m.Clusters())
	}
	if len(clusters) != wantLen {
		t.Fatalf("router lists %d clusters, partitions hold %d", len(clusters), wantLen)
	}
}

// TestRouterLifecycle drives the v3 surface through the router and the
// reference in lockstep.
func TestRouterLifecycle(t *testing.T) {
	com := testCommunity(t, 24)
	f := startFleet(t, com, 3)
	defer f.close()

	objs := stream(60)
	if _, err := f.ref.AddBatch(objs); err != nil {
		t.Fatal(err)
	}
	if _, err := f.router.AddBatch(objs); err != nil {
		t.Fatal(err)
	}

	prefs := []paretomon.Preference{{Attr: "a", Better: "v3", Worse: "v0"}}
	for _, d := range []paretomon.Driver{f.ref, f.router} {
		if err := d.AddUser("newcomer", prefs); err != nil {
			t.Fatal(err)
		}
		if err := d.AddPreference("newcomer", "b", "v1", "v4"); err != nil {
			t.Fatal(err)
		}
		if err := d.RetractPreference("newcomer", "b", "v1", "v4"); err != nil {
			t.Fatal(err)
		}
		if err := d.RemoveObject("o7"); err != nil {
			t.Fatal(err)
		}
		if err := d.RemoveUser("u3"); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range f.ref.Users() {
		want, _ := f.ref.Frontier(u)
		got, err := f.router.Frontier(u)
		if err != nil || !reflect.DeepEqual(want, got) {
			t.Fatalf("frontier(%s) after lifecycle: ref %v, router %v (%v)", u, want, got, err)
		}
	}

	// Error mapping: unknown entities keep their sentinels through HTTP.
	if _, err := f.router.Frontier("u3"); !errors.Is(err, paretomon.ErrUnknownUser) {
		t.Errorf("Frontier(removed user) = %v, want ErrUnknownUser", err)
	}
	if err := f.router.RemoveObject("o7"); !errors.Is(err, paretomon.ErrUnknownObject) {
		t.Errorf("second RemoveObject = %v, want ErrUnknownObject", err)
	}
	if err := f.router.RetractPreference("newcomer", "b", "v1", "v4"); !errors.Is(err, paretomon.ErrUnknownPreference) {
		t.Errorf("second retract = %v, want ErrUnknownPreference", err)
	}
}

// TestRouterPartitionDown: a dead partition fails writes with the
// taxonomy — a *RouteError aggregating ErrPartitionDown — while
// user-scoped reads on live partitions keep working.
func TestRouterPartitionDown(t *testing.T) {
	com := testCommunity(t, 24)
	f := startFleet(t, com, 3)
	defer f.close()

	if _, err := f.router.AddBatch(stream(10)); err != nil {
		t.Fatal(err)
	}
	if err := f.router.Ready(context.Background()); err != nil {
		t.Fatalf("healthy fleet not ready: %v", err)
	}

	// Kill partition 1 and shrink the budget so the test stays fast.
	fast, err := partition.New(partition.Config{
		URLs: []string{f.https[0].URL, f.https[1].URL, f.https[2].URL},

		RetryBudget:   150 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.https[1].Close()

	_, err = fast.AddBatch(stream(12)[10:])
	var re *partition.RouteError
	if !errors.As(err, &re) {
		t.Fatalf("AddBatch with a dead partition = %v, want *RouteError", err)
	}
	if !errors.Is(err, partition.ErrPartitionDown) {
		t.Fatalf("RouteError should wrap ErrPartitionDown, got %v", err)
	}
	if len(re.Failures) != 1 || re.Failures[0].Partition != 1 {
		t.Fatalf("failures = %+v, want exactly partition 1", re.Failures)
	}

	if err := fast.Ready(context.Background()); err == nil {
		t.Fatal("Ready should fail with a dead partition")
	}

	// Users owned by live partitions still read fine; the dead
	// partition's users fail with ErrPartitionDown.
	downUsers, liveUsers := 0, 0
	for _, u := range f.ref.Users() {
		_, err := fast.Frontier(u)
		switch fast.Owner(u) {
		case 1:
			if !errors.Is(err, partition.ErrPartitionDown) {
				t.Fatalf("Frontier(%s) on dead partition = %v, want ErrPartitionDown", u, err)
			}
			downUsers++
		default:
			if err != nil {
				t.Fatalf("Frontier(%s) on live partition: %v", u, err)
			}
			liveUsers++
		}
	}
	if downUsers == 0 || liveUsers == 0 {
		t.Fatalf("test community too small: %d down, %d live", downUsers, liveUsers)
	}
}

// TestRouterRetryResume: a partition that applies a batch but loses the
// response (injected 500) must not double-apply on retry — the Router
// probes the applied prefix and reconstructs, and the fleet stays
// identical to the reference.
func TestRouterRetryResume(t *testing.T) {
	com := testCommunity(t, 24)
	f := startFleet(t, com, 3)
	defer f.close()

	// Wrap partition 0 in a proxy that applies the first batch on the
	// backend but answers 500 — the "response lost in transit" crash.
	var injected atomic.Int32
	backend := f.https[0].Config.Handler
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/objects/batch" && injected.Add(1) == 1 {
			rec := httptest.NewRecorder()
			backend.ServeHTTP(rec, r) // backend applies the batch
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error": "injected: response lost"}`)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	rt, err := partition.New(partition.Config{
		URLs:          []string{flaky.URL, f.https[1].URL, f.https[2].URL},
		RetryBudget:   5 * time.Second,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	objs := stream(40)
	want, err := f.ref.AddBatch(objs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.AddBatch(objs)
	if err != nil {
		t.Fatalf("AddBatch through flaky partition: %v", err)
	}
	// Exactly one POST: the batch applied on the first (failed) attempt,
	// so the retry must resolve it entirely from the targets probe —
	// a second POST would mean a blind, double-applying resend.
	if injected.Load() != 1 {
		t.Fatalf("%d POSTs to the flaky partition, want exactly 1 (probe-resumed)", injected.Load())
	}
	// Resumed deliveries are reconstructed from current targets — the
	// documented approximation: a subset of the at-arrival delivery
	// (users whose delivery a later object of the same batch dominated
	// are not re-reported), never anything extra.
	for i := range want {
		if want[i].Object != got[i].Object {
			t.Fatalf("delivery %d: object %q vs %q", i, want[i].Object, got[i].Object)
		}
		ref := map[string]bool{}
		for _, u := range want[i].Users {
			ref[u] = true
		}
		for _, u := range got[i].Users {
			if !ref[u] {
				t.Fatalf("delivery %q reports user %s the reference never delivered to", got[i].Object, u)
			}
		}
	}
	// No double-apply: stream positions agree with the reference.
	if rs, ms := rt.Stats(), f.ref.Stats(); rs.Processed != ms.Processed {
		t.Fatalf("Processed after resume: router %d, reference %d", rs.Processed, ms.Processed)
	}
	for _, u := range f.ref.Users() {
		want, _ := f.ref.Frontier(u)
		got, err := rt.Frontier(u)
		if err != nil || !reflect.DeepEqual(want, got) {
			t.Fatalf("frontier(%s) after resume: ref %v, router %v (%v)", u, want, got, err)
		}
	}
}

// TestRouterIdempotentReplay: re-sending an entire batch the fleet
// already holds resolves as applied (the duplicate 4xx is disambiguated
// by the targets probe) instead of failing — the recovery path the
// failure playbook prescribes after a partial RouteError.
func TestRouterIdempotentReplay(t *testing.T) {
	com := testCommunity(t, 24)
	f := startFleet(t, com, 3)
	defer f.close()

	objs := stream(20)
	first, err := f.router.AddBatch(objs)
	if err != nil {
		t.Fatal(err)
	}
	again, err := f.router.AddBatch(objs)
	if err != nil {
		t.Fatalf("replaying an applied batch: %v", err)
	}
	// The replay reconstructs from current targets: every delivery's
	// users are a subset of the original (objects dominated since then
	// report fewer), and frontiers are untouched.
	if len(again) != len(first) {
		t.Fatalf("replay returned %d deliveries, want %d", len(again), len(first))
	}
	if rs := f.router.Stats(); rs.Processed != uint64(len(objs)) {
		t.Fatalf("replay double-applied: Processed = %d, want %d", rs.Processed, len(objs))
	}
}
