package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/storage"
)

// Message type tags on the feed stream.
const (
	tagHead   byte = 'H'
	tagRecord byte = 'R'
)

// maxFramePayload bounds a record frame; a length above it is treated as
// stream corruption rather than attempted (mirrors the WAL reader).
const maxFramePayload = 64 << 20

// ErrBadFrame reports a feed frame that cannot be trusted: a bad type
// tag, an implausible length, a CRC mismatch, or a payload that does not
// decode. The client drops the connection and resumes from its applied
// position.
var ErrBadFrame = errors.New("replica: damaged feed frame")

// Msg is one decoded feed message: either a head watermark or a record.
type Msg struct {
	// Head is the primary's last-appended seq when IsHead; Rec is the
	// shipped WAL record otherwise.
	IsHead bool
	Head   uint64
	Rec    storage.Record
}

// WriteHead writes a head message: the primary's last-appended seq.
func WriteHead(w io.Writer, seq uint64) error {
	var buf [9]byte
	buf[0] = tagHead
	binary.LittleEndian.PutUint64(buf[1:], seq)
	_, err := w.Write(buf[:])
	return err
}

// WriteRecord writes one WAL record as a length-prefixed, CRC-guarded
// codec-v2 frame.
func WriteRecord(w io.Writer, rec storage.Record) error {
	payload := storage.EncodeRecord(rec)
	var hdr [9]byte
	hdr[0] = tagRecord
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// FeedReader decodes a feed stream message by message.
type FeedReader struct {
	r *bufio.Reader
}

// NewFeedReader wraps a feed stream body.
func NewFeedReader(r io.Reader) *FeedReader {
	return &FeedReader{r: bufio.NewReader(r)}
}

// Next returns the next message. io.EOF (or the transport error) means
// the stream ended; ErrBadFrame means the bytes cannot be trusted. In
// both cases the caller reconnects and resumes from its applied seq.
func (f *FeedReader) Next() (Msg, error) {
	tag, err := f.r.ReadByte()
	if err != nil {
		return Msg{}, err
	}
	switch tag {
	case tagHead:
		var buf [8]byte
		if _, err := io.ReadFull(f.r, buf[:]); err != nil {
			return Msg{}, eofAsUnexpected(err)
		}
		return Msg{IsHead: true, Head: binary.LittleEndian.Uint64(buf[:])}, nil
	case tagRecord:
		var hdr [8]byte
		if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
			return Msg{}, eofAsUnexpected(err)
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxFramePayload {
			return Msg{}, fmt.Errorf("%w: record frame claims %d bytes", ErrBadFrame, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f.r, payload); err != nil {
			return Msg{}, eofAsUnexpected(err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return Msg{}, fmt.Errorf("%w: record frame CRC mismatch", ErrBadFrame)
		}
		rec, err := storage.DecodeRecord(payload)
		if err != nil {
			return Msg{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		return Msg{Rec: rec}, nil
	default:
		return Msg{}, fmt.Errorf("%w: unknown message tag 0x%02x", ErrBadFrame, tag)
	}
}

// eofAsUnexpected turns a mid-message EOF into io.ErrUnexpectedEOF so a
// tear inside a frame is distinguishable from a clean end between
// messages (both make the client reconnect).
func eofAsUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
