package replica

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/storage"
)

func sampleRecords() []storage.Record {
	return []storage.Record{
		{Seq: 1, Op: storage.OpObject, Name: "o1", Values: []string{"Apple", "dual"}},
		{Seq: 2, Op: storage.OpPreference, User: "alice", Attr: "brand", Better: "Apple", Worse: "Sony"},
		{Seq: 3, Op: storage.OpAddUser, Name: "bob", Prefs: []storage.RecordPref{{Attr: "CPU", Better: "quad", Worse: "dual"}}},
		{Seq: 4, Op: storage.OpRemoveUser, User: "bob"},
		{Seq: 5, Op: storage.OpRetractPreference, User: "alice", Attr: "brand", Better: "Apple", Worse: "Sony"},
		{Seq: 6, Op: storage.OpRemoveObject, Name: "o1"},
	}
}

// TestFeedRoundTrip frames every record type plus head watermarks and
// reads them back unchanged.
func TestFeedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHead(&buf, 42); err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if err := WriteRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteHead(&buf, 99); err != nil {
		t.Fatal(err)
	}

	fr := NewFeedReader(&buf)
	msg, err := fr.Next()
	if err != nil || !msg.IsHead || msg.Head != 42 {
		t.Fatalf("first message = %+v, %v", msg, err)
	}
	for i, want := range recs {
		msg, err := fr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if msg.IsHead {
			t.Fatalf("record %d: unexpected head", i)
		}
		if !reflect.DeepEqual(msg.Rec, want) {
			t.Fatalf("record %d: got %+v, want %+v", i, msg.Rec, want)
		}
	}
	msg, err = fr.Next()
	if err != nil || !msg.IsHead || msg.Head != 99 {
		t.Fatalf("trailing head = %+v, %v", msg, err)
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream end: %v, want EOF", err)
	}
}

// TestFeedDamage: torn frames end the stream with ErrUnexpectedEOF;
// flipped payload bytes, hostile lengths, and alien tags are ErrBadFrame
// — never a panic, never a silently wrong record.
func TestFeedDamage(t *testing.T) {
	frame := func(rec storage.Record) []byte {
		var buf bytes.Buffer
		if err := WriteRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	whole := frame(storage.Record{Seq: 7, Op: storage.OpObject, Name: "x", Values: []string{"v"}})

	t.Run("torn", func(t *testing.T) {
		for cut := 1; cut < len(whole); cut++ {
			fr := NewFeedReader(bytes.NewReader(whole[:cut]))
			if _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut at %d: %v, want ErrUnexpectedEOF", cut, err)
			}
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), whole...)
		bad[len(bad)-1] ^= 0xff
		fr := NewFeedReader(bytes.NewReader(bad))
		if _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("corrupt payload: %v, want ErrBadFrame", err)
		}
	})
	t.Run("hostile length", func(t *testing.T) {
		bad := []byte{tagRecord, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
		fr := NewFeedReader(bytes.NewReader(bad))
		if _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("hostile length: %v, want ErrBadFrame", err)
		}
	})
	t.Run("alien tag", func(t *testing.T) {
		fr := NewFeedReader(bytes.NewReader([]byte{0x7f}))
		if _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("alien tag: %v, want ErrBadFrame", err)
		}
	})
}
