package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/storage"
)

// SeqHeader carries a snapshot's log position on GET /snapshot/latest
// and the primary's head position on GET /wal responses.
const SeqHeader = "X-Paretomon-Seq"

// ErrGone reports a /wal request for a position the primary has pruned
// away (HTTP 410): the follower is too far behind the retained log and
// must re-bootstrap from the newest snapshot.
var ErrGone = errors.New("replica: requested WAL position no longer retained by the primary")

// ErrPermanent marks a rebootstrap failure retrying cannot fix — the
// primary's snapshot does not decode, or was written under a different
// monitor configuration. The Tailer stops instead of looping
// reset-and-fail forever; the error surfaces through the follower's
// Replication().Err.
var ErrPermanent = errors.New("replica: permanent replication failure")

// ErrNoFeed reports a primary that cannot serve the changefeed at all
// (HTTP 501): it was started without a store, so there is no WAL to
// ship. Point the follower at a primary running with a data directory.
var ErrNoFeed = errors.New("replica: primary has no write-ahead log (started without a store)")

// Client speaks the changefeed protocol against one primary.
type Client struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string
	// HTTP is the underlying client; nil means a default with no overall
	// timeout (feed responses are unbounded streams).
	HTTP *http.Client
}

// NewClient builds a client for the primary at base (trailing slashes
// are tolerated).
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Snapshot fetches the primary's newest snapshot. ok is false when the
// primary has not snapshotted yet (the follower then builds from its
// community and tails the feed from seq 0).
func (c *Client) Snapshot(ctx context.Context) (seq uint64, body []byte, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/snapshot/latest", nil)
	if err != nil {
		return 0, nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return 0, nil, false, nil
	case http.StatusNotImplemented:
		return 0, nil, false, ErrNoFeed
	default:
		return 0, nil, false, fmt.Errorf("replica: GET /snapshot/latest: %s", resp.Status)
	}
	seq, err = strconv.ParseUint(resp.Header.Get(SeqHeader), 10, 64)
	if err != nil {
		return 0, nil, false, fmt.Errorf("replica: snapshot response missing %s header: %w", SeqHeader, err)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, false, err
	}
	return seq, body, true, nil
}

// Head returns the primary's current last-appended log position, read
// from GET /storage/stats. Unlike the head watermarks riding the feed —
// which describe the log as of some already-shipped page — this is a
// fresh synchronous read, so "applied >= Head()" proves the follower
// has caught up to everything the primary had at the time of the call.
func (c *Client) Head(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/storage/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("replica: GET /storage/stats: %s", resp.Status)
	}
	var body struct {
		LastAppendedSeq uint64 `json:"last_appended_seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, fmt.Errorf("replica: decoding /storage/stats: %w", err)
	}
	return body.LastAppendedSeq, nil
}

// Stream is one open /wal connection.
type Stream struct {
	// Head is the primary's last-appended seq when the stream opened
	// (from the response header); head messages update it.
	Head uint64

	body io.ReadCloser
	fr   *FeedReader
}

// Next returns the next feed message, blocking while the primary
// long-polls at the tail.
func (s *Stream) Next() (Msg, error) {
	msg, err := s.fr.Next()
	if err == nil && msg.IsHead {
		s.Head = msg.Head
	}
	return msg, err
}

// Close drops the connection.
func (s *Stream) Close() error { return s.body.Close() }

// Tail opens the changefeed after the given position. The returned
// stream delivers records with Seq > after in order and stays open at
// the tail until the context ends, the connection drops, or the primary
// shuts down. ErrGone means the position is pruned: re-bootstrap.
func (c *Client) Tail(ctx context.Context, after uint64) (*Stream, error) {
	u := c.Base + "/wal?after=" + url.QueryEscape(strconv.FormatUint(after, 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		resp.Body.Close()
		return nil, ErrGone
	case http.StatusNotImplemented:
		resp.Body.Close()
		return nil, ErrNoFeed
	default:
		resp.Body.Close()
		return nil, fmt.Errorf("replica: GET /wal: %s", resp.Status)
	}
	head, err := strconv.ParseUint(resp.Header.Get(SeqHeader), 10, 64)
	if err != nil {
		// The header is part of the protocol: the tailer compares it
		// against the applied position to detect a primary that lost
		// acknowledged records, so a missing head must not read as 0.
		resp.Body.Close()
		return nil, fmt.Errorf("replica: feed response missing %s header: %w", SeqHeader, err)
	}
	return &Stream{Head: head, body: resp.Body, fr: NewFeedReader(resp.Body)}, nil
}

// Hooks are the follower's callbacks into the monitor it feeds.
type Hooks struct {
	// Applied returns the last applied seq — the resume cursor.
	Applied func() uint64
	// Apply applies one record. A non-nil error is fatal for the
	// follower: the feed and the monitor state have diverged.
	Apply func(rec storage.Record) error
	// Head observes the primary's head watermark (for lag accounting).
	Head func(seq uint64)
	// Rebootstrap rebuilds the monitor from a newer snapshot after the
	// follower's position was pruned away (ErrGone).
	Rebootstrap func(ctx context.Context) error
	// Connected observes transitions of the feed connection state.
	Connected func(up bool)
}

// Backoff tunes the tailer's reconnect delays.
type Backoff struct {
	// Min is the first retry delay (default 100ms); Max caps the
	// exponential growth (default 5s).
	Min, Max time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Min <= 0 {
		b.Min = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	return b
}

// Tailer is the resilient follower loop: connect, apply, and on any
// failure reconnect from the applied position with exponential backoff —
// records are applied exactly once because the resume cursor only
// advances on apply.
type Tailer struct {
	Client  *Client
	Hooks   Hooks
	Backoff Backoff
}

// Run tails the feed until the context ends or an apply fails (the
// returned error; nil on context cancellation). Transport errors are
// retried forever: a follower outliving a primary restart is the point.
func (t *Tailer) Run(ctx context.Context) error {
	b := t.Backoff.withDefaults()
	delay := b.Min
	setConnected := func(up bool) {
		if t.Hooks.Connected != nil {
			t.Hooks.Connected(up)
		}
	}
	defer setConnected(false)
	for ctx.Err() == nil {
		stream, err := t.Client.Tail(ctx, t.Hooks.Applied())
		if err != nil {
			if errors.Is(err, ErrGone) && t.Hooks.Rebootstrap != nil {
				switch rbErr := t.Hooks.Rebootstrap(ctx); {
				case rbErr == nil:
					delay = b.Min
					continue
				case errors.Is(rbErr, ErrPermanent):
					return rbErr
				case ctx.Err() != nil:
					return nil
				}
			}
			setConnected(false)
			if !sleep(ctx, delay) {
				return nil
			}
			delay = min(delay*2, b.Max)
			continue
		}
		// A primary head behind our applied position means the primary
		// lost records it had acknowledged and shipped — a power cut
		// past the fsync policy, or a wiped data directory behind the
		// same URL. Applying its new history on top of our old one
		// would silently diverge, so stop instead. (Detection is
		// best-effort: it closes once the primary re-appends past our
		// position; see docs/REPLICATION.md.)
		if applied := t.Hooks.Applied(); stream.Head < applied {
			stream.Close()
			return fmt.Errorf("%w: primary head %d is behind our applied position %d — the primary lost acknowledged log records; re-bootstrap this follower",
				ErrPermanent, stream.Head, applied)
		}
		// Publish the head watermark before flipping connected, so a
		// "connected and lag == 0" check never passes on a stale head.
		if t.Hooks.Head != nil {
			t.Hooks.Head(stream.Head)
		}
		setConnected(true)
		delay = b.Min
		err = t.drain(stream)
		stream.Close()
		setConnected(false)
		if err != nil {
			return err // fatal apply failure
		}
		// Transport-level end of stream: reconnect from the applied seq.
		if !sleep(ctx, delay) {
			return nil
		}
	}
	return nil
}

// drain applies stream messages until the stream ends (nil) or an apply
// fails (the error).
func (t *Tailer) drain(stream *Stream) error {
	for {
		msg, err := stream.Next()
		if err != nil {
			return nil // disconnect, tear, or damaged frame: resume
		}
		if msg.IsHead {
			if t.Hooks.Head != nil {
				t.Hooks.Head(msg.Head)
			}
			continue
		}
		if err := t.Hooks.Apply(msg.Rec); err != nil {
			return err
		}
		if t.Hooks.Head != nil {
			t.Hooks.Head(msg.Rec.Seq)
		}
	}
}

// sleep waits d or until ctx ends; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}
