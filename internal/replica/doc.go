// Package replica implements the read-scaling replication protocol: the
// wire format and client side of the primary's changefeed, which ships
// the write-ahead log to read-only follower monitors over HTTP.
//
// The primary (a durable Monitor behind internal/server) exposes two
// endpoints:
//
//	GET /snapshot/latest    the newest snapshot body (codec v2) with its
//	                        log position in the X-Paretomon-Seq header;
//	                        404 when no snapshot exists yet.
//	GET /wal?after=<seq>    a stream of feed messages carrying every WAL
//	                        record with Seq > after, long-polling at the
//	                        tail; 410 Gone when the position has been
//	                        pruned away (re-bootstrap from the snapshot);
//	                        501 when the primary has no store.
//
// A follower bootstraps from the snapshot, then tails the feed from its
// applied position, applying each record through the monitor's live
// mutation paths — the same code recovery replay uses — so follower
// frontiers, targets, and work counters are byte-identical to the
// primary's at the same log position.
//
// # Feed framing
//
// The /wal response body is a sequence of messages, each introduced by a
// one-byte type tag:
//
//	'H' (head)    u64 little-endian: the primary's last-appended seq at
//	              send time. Sent before every record burst and whenever
//	              the stream goes idle, so followers can compute lag
//	              (head - applied) without a second request.
//	'R' (record)  u32 little-endian payload length, u32 little-endian
//	              CRC32-IEEE of the payload, then the payload: one
//	              codec-v2 WAL record (storage.EncodeRecord), the exact
//	              bytes the primary's WAL segments frame.
//
// A torn or corrupt frame terminates the stream client-side; the
// follower reconnects from its applied seq, so records are applied
// exactly once regardless of where the transport failed.
//
// See docs/REPLICATION.md for the full topology and operations guide.
package replica
