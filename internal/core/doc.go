// Package core implements the paper's primary contribution: continuous
// monitoring of Pareto frontiers for many users over an append-only object
// stream (Sultana & Li, EDBT 2018, Secs. 4–6).
//
//   - Baseline is Alg. 1: per-user BNL-style frontier maintenance.
//   - FilterThenVerify is Alg. 2: users are clustered by preference
//     similarity and a shared frontier P_U under each cluster's common
//     preference relation (Def. 4.1) filters objects before any per-user
//     work; Theorem 4.5 guarantees the filter discards only true
//     negatives. Given approximate common relations (Sec. 6.2) the same
//     engine is FilterThenVerifyApprox — "the algorithm itself remains
//     the same".
//
// Beyond the paper (whose experiments are single-threaded), the package
// adds sharded execution: Sharded is a generic fan-out harness that
// drives user-disjoint shard engines concurrently, and
// ParallelFilterThenVerify / ParallelBaseline are Alg. 2 / Alg. 1 with
// whole clusters / users partitioned across worker goroutines. Results
// are identical to the sequential engines by construction; the
// equivalence tests pin that.
//
// The sliding-window counterparts (Sec. 7) live in internal/window; the
// similarity measures and clustering in internal/cluster; the
// partial-order machinery in internal/order and internal/pref.
package core
