package core

import (
	"runtime"
	"sync"

	"repro/internal/object"
	"repro/internal/ring"
)

// shardJob is one unit of work handed to a shard worker: process objs in
// order, store each object's target users in out (same indexing), then
// signal wg. The producer owns objs and out until the worker's wg.Done;
// the ring's atomic publish orders the field writes before the worker's
// reads, and wg orders the worker's out writes before the producer reads
// them back.
type shardJob struct {
	objs []object.Object
	out  [][]int
	wg   *sync.WaitGroup
}

// shardWorker is one shard's persistent consumer goroutine. Jobs arrive
// over a private SPSC ring — the ingest goroutine is the only producer —
// so the steady-state hand-off is two atomic stores and one channel send
// that almost always finds the doorbell already rung. Compare the old
// harness: one goroutine spawn + WaitGroup churn + a mutex-guarded
// counter drain per object.
type shardWorker struct {
	eng      ShardEngine
	q        *ring.SPSC[shardJob]
	doorbell chan struct{} // cap 1: "the ring is non-empty", never blocks the producer
	quit     chan struct{}
	done     chan struct{}

	// Batch-result arena: per-object target lists are copied out of the
	// engine's scratch (which the next Process overwrites) into one flat
	// slice reused across batches, so a B-object batch costs O(1)
	// steady-state allocations instead of B.
	arena []int
	offs  []int
}

func newShardWorker(eng ShardEngine) *shardWorker {
	w := &shardWorker{
		eng:      eng,
		q:        ring.New[shardJob](2),
		doorbell: make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.run()
	return w
}

// submit enqueues a job and rings the doorbell. Calls are serialized by
// the harness (single producer). The ring cannot be full in practice —
// the harness waits for each call's jobs before issuing more — but spin
// politely rather than assume.
func (w *shardWorker) submit(job shardJob) {
	for !w.q.Push(job) {
		runtime.Gosched()
	}
	select {
	case w.doorbell <- struct{}{}:
	default:
	}
}

// stop shuts the worker down after it drains the ring.
func (w *shardWorker) stop() {
	close(w.quit)
	<-w.done
}

func (w *shardWorker) run() {
	defer close(w.done)
	for {
		w.drain()
		select {
		case <-w.doorbell:
		case <-w.quit:
			w.drain()
			return
		}
	}
}

func (w *shardWorker) drain() {
	for {
		job, ok := w.q.Pop()
		if !ok {
			return
		}
		w.exec(job)
	}
}

func (w *shardWorker) exec(job shardJob) {
	if len(job.objs) == 1 {
		// Single-object job: the result may alias engine scratch, but the
		// producer merges it into a fresh slice before the next submit.
		job.out[0] = w.eng.Process(job.objs[0])
		job.wg.Done()
		return
	}
	// Batch: each result must be copied before the next Process overwrites
	// the engine's scratch slice. Offsets, not subslices, during the fill —
	// arena reallocation would invalidate earlier spans.
	arena, offs := w.arena[:0], w.offs[:0]
	for _, o := range job.objs {
		offs = append(offs, len(arena))
		arena = append(arena, w.eng.Process(o)...)
	}
	offs = append(offs, len(arena))
	for j := range job.objs {
		job.out[j] = arena[offs[j]:offs[j+1]:offs[j+1]]
	}
	w.arena, w.offs = arena, offs
	job.wg.Done()
}
