package core

import "repro/internal/object"

// Frontier is a mutable Pareto frontier: a set of objects none of which
// dominates another (under the owner's preference profile). Membership
// tests are O(1); removal is swap-delete. Iteration order is the engine's
// scan order and is deterministic for a fixed input history.
type Frontier struct {
	list []object.Object
	pos  map[int]int // object id -> index in list
}

// NewFrontier returns an empty frontier.
func NewFrontier() *Frontier {
	return &Frontier{pos: make(map[int]int)}
}

// Len returns the number of frontier objects.
func (f *Frontier) Len() int { return len(f.list) }

// Contains reports whether the object with the given id is in the frontier.
func (f *Frontier) Contains(objID int) bool {
	_, ok := f.pos[objID]
	return ok
}

// Add inserts o; inserting an object already present is a no-op.
func (f *Frontier) Add(o object.Object) {
	if _, ok := f.pos[o.ID]; ok {
		return
	}
	f.pos[o.ID] = len(f.list)
	f.list = append(f.list, o)
}

// Remove deletes the object with the given id, returning whether it was
// present.
func (f *Frontier) Remove(objID int) bool {
	i, ok := f.pos[objID]
	if !ok {
		return false
	}
	last := len(f.list) - 1
	if i != last {
		f.list[i] = f.list[last]
		f.pos[f.list[i].ID] = i
	}
	f.list = f.list[:last]
	delete(f.pos, objID)
	return true
}

// At returns the i-th object in scan order. Engines iterate by index so
// they can remove the current element and retry the same slot (swap-delete
// moves the last element into it).
func (f *Frontier) At(i int) object.Object { return f.list[i] }

// IDs returns the member object ids in unspecified order.
func (f *Frontier) IDs() []int {
	out := make([]int, len(f.list))
	for i, o := range f.list {
		out[i] = o.ID
	}
	return out
}

// Objects returns the member objects in scan order; the caller must not
// mutate the slice.
func (f *Frontier) Objects() []object.Object { return f.list }

// Clone returns an independent copy.
func (f *Frontier) Clone() *Frontier {
	c := NewFrontier()
	for _, o := range f.list {
		c.Add(o)
	}
	return c
}
