package core

import "repro/internal/object"

// Frontier is a mutable Pareto frontier: a set of objects none of which
// dominates another (under the owner's preference profile). Membership
// tests are O(1); removal is swap-delete. Iteration order is the engine's
// scan order and is deterministic for a fixed input history.
//
// Object ids are dense (the Monitor interns them in arrival order), so
// positions live in an id-indexed array rather than a map: Contains and
// Remove on the comparison hot path are a single slice load instead of a
// map probe.
type Frontier struct {
	list []object.Object
	pos  []int32 // object id -> index in list; -1 = absent
}

// NewFrontier returns an empty frontier.
func NewFrontier() *Frontier {
	return &Frontier{}
}

// grow extends the position index to cover id.
func (f *Frontier) grow(id int) {
	for len(f.pos) <= id {
		f.pos = append(f.pos, -1)
	}
}

// Len returns the number of frontier objects.
func (f *Frontier) Len() int { return len(f.list) }

// Contains reports whether the object with the given id is in the frontier.
//
//paretomon:hotpath
func (f *Frontier) Contains(objID int) bool {
	return objID >= 0 && objID < len(f.pos) && f.pos[objID] >= 0
}

// ByID returns the member object with the given id.
func (f *Frontier) ByID(objID int) (object.Object, bool) {
	if objID < 0 || objID >= len(f.pos) || f.pos[objID] < 0 {
		return object.Object{}, false
	}
	return f.list[f.pos[objID]], true
}

// Add inserts o; inserting an object already present is a no-op.
//
//paretomon:hotpath
func (f *Frontier) Add(o object.Object) {
	if f.Contains(o.ID) {
		return
	}
	f.grow(o.ID)
	f.pos[o.ID] = int32(len(f.list))
	f.list = append(f.list, o)
}

// Remove deletes the object with the given id, returning whether it was
// present.
//
//paretomon:hotpath
func (f *Frontier) Remove(objID int) bool {
	if !f.Contains(objID) {
		return false
	}
	i := f.pos[objID]
	last := len(f.list) - 1
	if int(i) != last {
		f.list[i] = f.list[last]
		f.pos[f.list[i].ID] = i
	}
	f.list = f.list[:last]
	f.pos[objID] = -1
	return true
}

// At returns the i-th object in scan order. Engines iterate by index so
// they can remove the current element and retry the same slot (swap-delete
// moves the last element into it).
func (f *Frontier) At(i int) object.Object { return f.list[i] }

// IDs returns the member object ids in unspecified order.
func (f *Frontier) IDs() []int {
	out := make([]int, len(f.list))
	for i, o := range f.list {
		out[i] = o.ID
	}
	return out
}

// Objects returns the member objects in scan order; the caller must not
// mutate the slice.
func (f *Frontier) Objects() []object.Object { return f.list }

// Clone returns an independent copy.
func (f *Frontier) Clone() *Frontier {
	return &Frontier{
		list: append([]object.Object(nil), f.list...),
		pos:  append([]int32(nil), f.pos...),
	}
}
