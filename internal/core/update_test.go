package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/pref"
)

func TestBaselineApplyPreference(t *testing.T) {
	l := fixtures.NewLaptops()
	b := core.NewBaseline([]*pref.Profile{l.C2.Clone()}, nil)
	feed(b, l.Objects[:15])
	// P_c2 = {o2, o3, o15}.
	if got := sorted(b.UserFrontier(0)); !reflect.DeepEqual(got, ids(2, 3, 15)) {
		t.Fatalf("frontier = %v", got)
	}
	// c2 learns Apple ≻ Samsung: o2 now dominates o3.
	br, _ := l.Domains[1].ID("Apple")
	sa, _ := l.Domains[1].ID("Samsung")
	if err := b.ApplyPreference(0, 1, br, sa); err != nil {
		t.Fatal(err)
	}
	if got := sorted(b.UserFrontier(0)); !reflect.DeepEqual(got, ids(2, 15)) {
		t.Fatalf("frontier after update = %v, want %v", got, ids(2, 15))
	}
	if got := b.Targets(2); got != nil {
		t.Errorf("C_o3 should be empty after update, got %v", got)
	}
}

func TestApplyPreferenceRejectsCycle(t *testing.T) {
	l := fixtures.NewLaptops()
	b := core.NewBaseline([]*pref.Profile{l.C1.Clone()}, nil)
	a, _ := l.Domains[1].ID("Apple")
	le, _ := l.Domains[1].ID("Lenovo")
	if err := b.ApplyPreference(0, 1, le, a); err == nil {
		t.Fatal("reverse of an existing tuple must be rejected")
	}
	if err := b.ApplyPreference(99, 1, a, le); err == nil {
		t.Fatal("unknown user must be rejected")
	}
}

// After an online update, the engine must agree with a fresh engine built
// with the updated preferences and replayed from scratch.
func TestQuickApplyPreferenceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users, objs := randomWorld(r, 4, 2, 5, 40, 4)
		clusters := []core.Cluster{
			{Members: []int{0, 1}, Common: pref.Common([]*pref.Profile{users[0], users[1]})},
			{Members: []int{2, 3}, Common: pref.Common([]*pref.Profile{users[2], users[3]})},
		}
		// Deep-copy user profiles for the two engines.
		usersA := make([]*pref.Profile, len(users))
		usersB := make([]*pref.Profile, len(users))
		for i, u := range users {
			usersA[i] = u.Clone()
			usersB[i] = u.Clone()
		}
		cloneClusters := func(us []*pref.Profile) []core.Cluster {
			out := make([]core.Cluster, len(clusters))
			for i, cl := range clusters {
				members := make([]*pref.Profile, len(cl.Members))
				for j, m := range cl.Members {
					members[j] = us[m]
				}
				out[i] = core.Cluster{Members: cl.Members, Common: pref.Common(members)}
			}
			return out
		}

		live := core.NewFilterThenVerify(usersA, cloneClusters(usersA), nil)
		liveBase := core.NewBaseline(usersB, nil)
		feed(live, objs)
		feed(liveBase, objs)

		// Apply a few random (accepted) preference updates online.
		for k := 0; k < 5; k++ {
			c := r.Intn(len(users))
			d := r.Intn(2)
			x, y := r.Intn(5), r.Intn(5)
			errA := live.ApplyPreference(c, d, x, y)
			errB := liveBase.ApplyPreference(c, d, x, y)
			if (errA == nil) != (errB == nil) {
				return false
			}
		}

		// Rebuild from the updated profiles and replay.
		rebuilt := core.NewBaseline(usersA, nil)
		feed(rebuilt, objs)
		for c := range users {
			want := sorted(rebuilt.UserFrontier(c))
			if !reflect.DeepEqual(sorted(live.UserFrontier(c)), want) {
				return false
			}
			if !reflect.DeepEqual(sorted(liveBase.UserFrontier(c)), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
