package core

import (
	"fmt"
)

// Online preference updates. The paper assumes preferences "stand or only
// change occasionally"; this extension handles the occasional change
// without rebuilding the engine, for the growth direction: adding a
// preference tuple (plus its transitive closure) only ever adds dominance
// pairs, so every frontier can only shrink, and filtering the current
// frontier pairwise is exact:
//
// If an alive object x outside the old frontier dominated o under the new
// preferences, then x was dominated by some old frontier member y, still
// is (growth preserves dominance), and y — or whatever new-frontier member
// dominates y — dominates o transitively. So scanning old frontier members
// against each other loses nothing.
//
// Removing a preference tuple can resurrect arbitrary previously-dominated
// objects, which an append-only engine has discarded; that direction
// requires a rebuild and is deliberately not offered.

// ApplyPreference records that user c now also prefers value better over
// value worse on attribute d, and repairs the user's frontier in place.
// It fails if the tuple would break the strict-partial-order axioms.
func (b *Baseline) ApplyPreference(c, d, better, worse int) error {
	if c < 0 || c >= len(b.users) {
		return fmt.Errorf("core: no user %d", c)
	}
	if err := b.users[c].Relation(d).Add(better, worse); err != nil {
		return err
	}
	b.repairUser(c)
	return nil
}

// repairUser removes frontier members dominated under the (grown)
// preferences. Comparisons are counted as verify work.
func (b *Baseline) repairUser(c int) {
	u := b.users[c]
	f := b.fronts[c]
	members := append([]int(nil), f.IDs()...)
	for _, id := range members {
		o, ok := f.ByID(id)
		if !ok {
			continue // removed by an earlier iteration
		}
		for i := 0; i < f.Len(); i++ {
			op := f.At(i)
			if op.ID == id {
				continue
			}
			b.ctr.AddVerify(1)
			if u.Dominates(op, o) {
				f.Remove(id)
				b.targets.remove(id, c)
				break
			}
		}
	}
}

// ApplyPreference records a new preference tuple for user c on attribute d
// and repairs, in order: the user's cluster's common relation (which can
// only grow — it is the intersection of member relations and one member's
// relation grew), the cluster's filter frontier, and the member frontiers.
func (f *FilterThenVerify) ApplyPreference(c, d, better, worse int) error {
	if c < 0 || c >= len(f.users) {
		return fmt.Errorf("core: no user %d", c)
	}
	if err := f.users[c].Relation(d).Add(better, worse); err != nil {
		return err
	}
	ui := f.clusterOf(c)
	cl := &f.clusters[ui]

	// Recompute the common relation of the affected cluster through the
	// configured CommonFn. For the exact engines (pref.Common) it can
	// only grow — the new intersection subsumes the old one — so the
	// pairwise filter below is exact; the approximate relation may move
	// either way, keeping the same one-sided repair the arrival path
	// applies (Sec. 6.2's bounded inaccuracy).
	cl.Common = f.common(cl.Members)

	// Filter P_U pairwise under the recomputed common relation; removals
	// propagate to every member frontier (the removed object is dominated
	// under ≻_U, hence under every member's preferences).
	f.filterClusterFrontier(ui)

	// Filter the changed user's own frontier under their new preferences.
	f.repairMember(c)
	return nil
}

// repairMember filters P_c pairwise for one user.
func (f *FilterThenVerify) repairMember(c int) {
	u := f.users[c]
	fc := f.userFronts[c]
	ids := append([]int(nil), fc.IDs()...)
	for _, id := range ids {
		o, ok := fc.ByID(id)
		if !ok {
			continue
		}
		for j := 0; j < fc.Len(); j++ {
			op := fc.At(j)
			if op.ID == id {
				continue
			}
			f.ctr.AddVerify(1)
			if u.Dominates(op, o) {
				fc.Remove(id)
				f.targets.remove(id, c)
				break
			}
		}
	}
}

// clusterOf locates the cluster containing user c.
func (f *FilterThenVerify) clusterOf(c int) int {
	for ui, cl := range f.clusters {
		for _, m := range cl.Members {
			if m == c {
				return ui
			}
		}
	}
	panic(fmt.Sprintf("core: user %d not in any cluster", c))
}
