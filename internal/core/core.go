package core

import (
	"repro/internal/bitset"
	"repro/internal/object"
)

// Monitor is the common interface of the append-only engines: feed each
// arriving object, get back its target users C_o (indices into the user
// list the engine was built with).
type Monitor interface {
	// Process ingests the next object and returns the ids of users whose
	// Pareto frontier the object joins, in ascending order.
	Process(o object.Object) []int
	// UserFrontier returns the current Pareto frontier of user c as object
	// ids in unspecified order.
	UserFrontier(c int) []int
}

// targetTracker maintains C_o for every object currently Pareto-optimal
// for at least one user ("C_o ← C_o ± {c}" bookkeeping in Algs. 1–2).
type targetTracker struct {
	m map[int]*bitset.Set // object id -> set of user ids
}

func newTargetTracker() *targetTracker {
	return &targetTracker{m: make(map[int]*bitset.Set)}
}

func (t *targetTracker) add(objID, user int) {
	s, ok := t.m[objID]
	if !ok {
		s = &bitset.Set{}
		t.m[objID] = s
	}
	s.Add(user)
}

func (t *targetTracker) remove(objID, user int) {
	if s, ok := t.m[objID]; ok {
		s.Remove(user)
		if s.Empty() {
			delete(t.m, objID)
		}
	}
}

// users returns C_o as a sorted slice (nil if empty).
func (t *targetTracker) users(objID int) []int {
	if s, ok := t.m[objID]; ok {
		return s.Slice()
	}
	return nil
}
