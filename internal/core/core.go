package core

import (
	"repro/internal/bitset"
	"repro/internal/object"
)

// Monitor is the common interface of the append-only engines: feed each
// arriving object, get back its target users C_o (indices into the user
// list the engine was built with).
type Monitor interface {
	// Process ingests the next object and returns the ids of users whose
	// Pareto frontier the object joins, in ascending order.
	Process(o object.Object) []int
	// UserFrontier returns the current Pareto frontier of user c as object
	// ids in unspecified order.
	UserFrontier(c int) []int
}

// targetTracker maintains C_o for every object currently Pareto-optimal
// for at least one user ("C_o ← C_o ± {c}" bookkeeping in Algs. 1–2).
// Object ids are dense, so the sets live in an id-indexed slice; a nil
// slot is an empty C_o.
type targetTracker struct {
	sets []*bitset.Set // object id -> set of user ids; nil = empty
}

func newTargetTracker() *targetTracker {
	return &targetTracker{}
}

func (t *targetTracker) add(objID, user int) {
	for len(t.sets) <= objID {
		t.sets = append(t.sets, nil)
	}
	s := t.sets[objID]
	if s == nil {
		s = &bitset.Set{}
		t.sets[objID] = s
	}
	s.Add(user)
}

func (t *targetTracker) remove(objID, user int) {
	if objID >= 0 && objID < len(t.sets) && t.sets[objID] != nil {
		t.sets[objID].Remove(user)
	}
}

// users returns C_o as a sorted slice (nil if empty).
func (t *targetTracker) users(objID int) []int {
	if objID < 0 || objID >= len(t.sets) {
		return nil
	}
	if s := t.sets[objID]; s != nil && !s.Empty() {
		return s.Slice()
	}
	return nil
}
