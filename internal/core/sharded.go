package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/object"
	"repro/internal/pref"
	"repro/internal/stats"
)

// ShardEngine is what a shard must offer to be driven by Sharded: the
// full single-threaded monitor surface over its slice of the user set.
// Both the append-only engines here and the sliding-window engines in
// internal/window satisfy it.
type ShardEngine interface {
	Process(o object.Object) []int
	UserFrontier(c int) []int
	Targets(objID int) []int
	ApplyPreference(c, d, better, worse int) error
	// CaptureState / RestoreState fill and rebuild the shard's owned
	// slots of a unit-keyed EngineState (see state.go).
	CaptureState(st *EngineState)
	RestoreState(st *EngineState) error
	// Lifecycle mutations (see LifecycleEngine). RegisterUser and
	// RemoveObject apply to every shard (all shards index the full user
	// table and, for windowed engines, age private rings); the remaining
	// calls go to the owning shard only.
	LifecycleEngine
	// SetClusterTotal tells a cluster-sharded instance the full cluster
	// list grew (its state capture is keyed by global cluster index).
	SetClusterTotal(n int)
	// SetCommonFn installs the cluster-relation recompute for online
	// preference updates; no-op on baseline engines.
	SetCommonFn(fn CommonFn)
}

// Sharded is the shared fan-out harness behind every parallel engine:
// user-disjoint shards (one sequential engine each) driven concurrently,
// with per-shard work counters folded into a public counter after each
// call. Because shards own disjoint users — and, for the clustered
// engines, disjoint clusters — the only cross-shard state is the
// counters, so results are identical to the sequential engines by
// construction; the property tests pin that equivalence.
//
// Sharded itself is single-writer, like the engines it wraps: callers
// serialize Process / ProcessBatch / ApplyPreference externally (the
// public Monitor does so under its write lock).
type Sharded struct {
	shards []ShardEngine
	ctrs   []*stats.Counters // per-shard private counters, drained on merge
	owner  []int             // user index -> shard index

	ctr      *stats.Counters // public merged counter (may be nil)
	perShard []stats.Counters
	mu       sync.Mutex // guards perShard and the drain-and-fold

	clusterCount int   // full cluster-list length (0 for user-sharded)
	clusterOwner []int // cluster index -> shard index (nil for user-sharded)
}

// NewSharded assembles a harness from pre-built shards. ctrs[i] must be
// the private counter shards[i] was built with; owner maps every user
// index to the shard that exclusively maintains its frontier.
func NewSharded(shards []ShardEngine, ctrs []*stats.Counters, owner []int, ctr *stats.Counters) *Sharded {
	if len(shards) != len(ctrs) {
		panic("core: sharded engine needs one counter per shard")
	}
	return &Sharded{
		shards:   shards,
		ctrs:     ctrs,
		owner:    owner,
		ctr:      ctr,
		perShard: make([]stats.Counters, len(shards)),
	}
}

// ShardedByUser assembles a harness whose shards own round-robin
// partitions of the user set: shard s gets users s, s+workers, … and a
// private counter, both passed to build. Baseline-style engines (no
// shared tier) shard this way.
func ShardedByUser(userCount, workers int, ctr *stats.Counters, build func(members []int, ctr *stats.Counters) ShardEngine) *Sharded {
	return ShardedByUserActive(userCount, nil, workers, ctr, build)
}

// ShardedByUserActive is ShardedByUser over a user table with removed
// (inactive) slots: every user index keeps an owner so future
// re-activations route consistently, but only active users join a
// shard's member list. active == nil means every user is active.
func ShardedByUserActive(userCount int, active []bool, workers int, ctr *stats.Counters, build func(members []int, ctr *stats.Counters) ShardEngine) *Sharded {
	units := userCount
	if active != nil {
		units = 0
		for _, a := range active {
			if a {
				units++
			}
		}
	}
	workers = ResolveWorkers(workers, units)
	shards := make([]ShardEngine, workers)
	ctrs := make([]*stats.Counters, workers)
	owner := make([]int, userCount)
	perShard := make([][]int, workers)
	for c := 0; c < userCount; c++ {
		s := c % workers
		owner[c] = s
		if active == nil || active[c] {
			perShard[s] = append(perShard[s], c)
		}
	}
	for s := range shards {
		ctrs[s] = &stats.Counters{}
		shards[s] = build(perShard[s], ctrs[s])
	}
	return NewSharded(shards, ctrs, owner, ctr)
}

// ShardedByCluster assembles a harness whose shards own round-robin
// partitions of the cluster list — a cluster's filter frontier and its
// members' frontiers always land on the same shard. build receives the
// shard's cluster subset together with each cluster's index in the full
// list (so per-cluster state stays keyed shard-independently).
// Membership must partition [0, userCount); validate before calling.
func ShardedByCluster(userCount int, clusters []Cluster, workers int, ctr *stats.Counters, build func(clusters []Cluster, globalIdx []int, ctr *stats.Counters) ShardEngine) *Sharded {
	workers = ResolveWorkers(workers, len(clusters))
	shards := make([]ShardEngine, workers)
	ctrs := make([]*stats.Counters, workers)
	owner := make([]int, userCount)
	perShard := make([][]Cluster, workers)
	perShardIdx := make([][]int, workers)
	for i, cl := range clusters {
		s := i % workers
		perShard[s] = append(perShard[s], cl)
		perShardIdx[s] = append(perShardIdx[s], i)
		for _, c := range cl.Members {
			owner[c] = s
		}
	}
	for s := range shards {
		ctrs[s] = &stats.Counters{}
		shards[s] = build(perShard[s], perShardIdx[s], ctrs[s])
	}
	s := NewSharded(shards, ctrs, owner, ctr)
	s.clusterCount = len(clusters)
	s.clusterOwner = make([]int, len(clusters))
	for i := range clusters {
		s.clusterOwner[i] = i % workers
	}
	return s
}

// ResolveWorkers normalizes a worker-count request: n <= 0 means
// GOMAXPROCS, and the count is clamped to the number of independent
// units (clusters or users) available to shard over.
func ResolveWorkers(workers, units int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Process fans the object out to every shard concurrently and merges the
// target users.
func (s *Sharded) Process(o object.Object) []int {
	if len(s.shards) == 1 {
		co := s.shards[0].Process(o)
		s.merge(1)
		return co
	}
	results := make([][]int, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.shards[i].Process(o)
		}(i)
	}
	wg.Wait()
	s.merge(1)
	return mergeUsers(results)
}

// ProcessBatch pipelines a whole batch across the shards: each shard
// walks the full batch in its own goroutine, so synchronization happens
// once per batch rather than once per object. Results are per object, in
// batch order — identical to calling Process object by object.
func (s *Sharded) ProcessBatch(objs []object.Object) [][]int {
	out := make([][]int, len(objs))
	if len(s.shards) == 1 {
		for i, o := range objs {
			out[i] = s.shards[0].Process(o)
		}
		s.merge(len(objs))
		return out
	}
	results := make([][][]int, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := make([][]int, len(objs))
			for j, o := range objs {
				r[j] = s.shards[i].Process(o)
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	s.merge(len(objs))
	perObject := make([][]int, len(s.shards))
	for j := range objs {
		for i := range results {
			perObject[i] = results[i][j]
		}
		out[j] = mergeUsers(perObject)
	}
	return out
}

// mergeUsers concatenates per-shard target-user lists into one sorted
// C_o. Shards own disjoint users, so no deduplication is needed.
func mergeUsers(results [][]int) []int {
	var co []int
	for _, r := range results {
		co = append(co, r...)
	}
	sort.Ints(co)
	return co
}

// merge drains the shards' private counters into the public counter and
// the cumulative per-shard totals. Each shard counts Processed on its
// own; publicly an object is processed once, so the public counter gets
// the true count and the shard totals keep their own view.
func (s *Sharded) merge(processed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.ctrs {
		snap := c.Snapshot()
		c.Reset()
		s.perShard[i].Merge(snap)
		s.ctr.AddFilter(int(snap.FilterComparisons))
		s.ctr.AddVerify(int(snap.VerifyComparisons))
		s.ctr.AddDelivered(int(snap.Delivered))
	}
	s.ctr.AddProcessedN(processed)
}

// UserFrontier returns P_c from the shard that owns user c.
func (s *Sharded) UserFrontier(c int) []int {
	return s.shards[s.owner[c]].UserFrontier(c)
}

// Targets returns C_o merged across shards.
func (s *Sharded) Targets(objID int) []int {
	var out []int
	for _, sh := range s.shards {
		out = append(out, sh.Targets(objID)...)
	}
	sort.Ints(out)
	return out
}

// ApplyPreference routes an online preference update to the shard that
// owns the user. The preference profiles are shared across shards, so
// the relation grows once; only the owning shard holds the user's (and
// its cluster's) frontiers, so only it needs to repair.
func (s *Sharded) ApplyPreference(c, d, better, worse int) error {
	if err := s.shards[s.owner[c]].ApplyPreference(c, d, better, worse); err != nil {
		return err
	}
	s.merge(0)
	return nil
}

// RegisterUser extends every shard's user table: shards index users
// globally, so the table grows everywhere while only the owner will
// activate the slot.
func (s *Sharded) RegisterUser(c int, p *pref.Profile) {
	for _, sh := range s.shards {
		sh.RegisterUser(c, p)
	}
}

// ActivateUser routes the activation to the owning shard: the shard that
// owns the joined cluster for cluster-sharded engines (founding clusters
// round-robin, continuing the construction-time assignment), round-robin
// over users otherwise.
func (s *Sharded) ActivateUser(c int, cluster int, common *pref.Profile, alive []object.Object) {
	var sh int
	if s.clusterOwner != nil {
		if cluster >= len(s.clusterOwner) {
			sh = cluster % len(s.shards)
			s.clusterOwner = append(s.clusterOwner, sh)
			s.clusterCount = cluster + 1
			for _, e := range s.shards {
				e.SetClusterTotal(s.clusterCount)
			}
		} else {
			sh = s.clusterOwner[cluster]
		}
	} else {
		sh = c % len(s.shards)
	}
	for len(s.owner) <= c {
		s.owner = append(s.owner, 0)
	}
	s.owner[c] = sh
	s.shards[sh].ActivateUser(c, cluster, common, alive)
	s.merge(0)
}

// DeactivateUser blanks the slot on every shard (only the owner holds
// state; the rest no-op).
func (s *Sharded) DeactivateUser(c int) {
	for _, sh := range s.shards {
		sh.DeactivateUser(c)
	}
}

// RemoveUser routes the removal (and its cluster resync) to the owner.
func (s *Sharded) RemoveUser(c int, common *pref.Profile, alive []object.Object) {
	s.shards[s.owner[c]].RemoveUser(c, common, alive)
	s.merge(0)
}

// RetractPreference routes the mend to the shard owning the user's
// frontier (and cluster); the shared profile was already shrunk by the
// caller, once.
func (s *Sharded) RetractPreference(c int, common *pref.Profile, alive []object.Object) {
	s.shards[s.owner[c]].RetractPreference(c, common, alive)
	s.merge(0)
}

// RemoveObject fans the deletion to every shard: each owns disjoint
// frontiers (and, for windowed engines, a private ring) the object may
// occupy.
func (s *Sharded) RemoveObject(o object.Object, alive []object.Object) {
	for _, sh := range s.shards {
		sh.RemoveObject(o, alive)
	}
	s.merge(0)
}

// SetClusterTotal forwards the full-cluster-list length to every shard.
func (s *Sharded) SetClusterTotal(n int) {
	for _, sh := range s.shards {
		sh.SetClusterTotal(n)
	}
}

// SetCommonFn forwards the cluster-relation recompute to every shard.
func (s *Sharded) SetCommonFn(fn CommonFn) {
	for _, sh := range s.shards {
		sh.SetCommonFn(fn)
	}
}

// Shards reports how many workers the engine fans out to.
func (s *Sharded) Shards() int { return len(s.shards) }

// ResetShardCounters zeroes the cumulative per-shard counters. The
// Monitor calls it after recovery: state restore and log replay fold
// their work into the per-shard totals, but those are observability for
// live load skew, so post-recovery they restart from zero (the public
// totals are restored exactly, separately).
func (s *Sharded) ResetShardCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.perShard {
		s.perShard[i].Reset()
	}
}

// ShardCounters returns a snapshot of each shard's cumulative work
// counters, for per-shard observability (load skew across shards).
func (s *Sharded) ShardCounters() []stats.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]stats.Counters, len(s.perShard))
	copy(out, s.perShard)
	return out
}
