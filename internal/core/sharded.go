package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/object"
	"repro/internal/pref"
	"repro/internal/stats"
)

// ShardEngine is what a shard must offer to be driven by Sharded: the
// full single-threaded monitor surface over its slice of the user set.
// Both the append-only engines here and the sliding-window engines in
// internal/window satisfy it.
type ShardEngine interface {
	Process(o object.Object) []int
	UserFrontier(c int) []int
	Targets(objID int) []int
	ApplyPreference(c, d, better, worse int) error
	// CaptureState / RestoreState fill and rebuild the shard's owned
	// slots of a unit-keyed EngineState (see state.go).
	CaptureState(st *EngineState)
	RestoreState(st *EngineState) error
	// Lifecycle mutations (see LifecycleEngine). RegisterUser and
	// RemoveObject apply to every shard (all shards index the full user
	// table and, for windowed engines, age private rings); the remaining
	// calls go to the owning shard only.
	LifecycleEngine
	// SetClusterTotal tells a cluster-sharded instance the full cluster
	// list grew (its state capture is keyed by global cluster index).
	SetClusterTotal(n int)
	// SetCommonFn installs the cluster-relation recompute for online
	// preference updates; no-op on baseline engines.
	SetCommonFn(fn CommonFn)
}

// scratchEngine is implemented by shard engines that can reuse one
// internal result slice across Process calls instead of allocating a
// fresh C_o per object. Sharded enables it on every shard it drives —
// the harness always copies results into its own merged slice before
// returning, so the aliasing is contained.
type scratchEngine interface{ EnableScratch() }

// Sharded is the shared fan-out harness behind every parallel engine:
// user-disjoint shards (one sequential engine each) driven either inline
// or by persistent worker goroutines fed over single-producer/single-
// consumer rings. Because shards own disjoint users — and, for the
// clustered engines, disjoint clusters — the only cross-shard state is
// the counters, so results are identical to the sequential engines by
// construction; the property tests pin that equivalence.
//
// Counter discipline: each shard accumulates comparisons into its own
// private counter and is never drained on the hot path. The public
// counter holds only the true Processed count (an object is processed
// once, not once per shard) plus whatever base recovery folded in;
// Totals sums the two views on demand. The old harness drained every
// shard counter under a mutex after every object — measurably the
// single largest cost of stream-mode fan-out.
//
// Dispatch: with async off (the default when GOMAXPROCS == 1) or a
// single shard, Process runs the shards inline in the caller's
// goroutine — zero synchronization, which is what lets a sharded engine
// match the sequential one on a single core. With async on, each shard
// has a persistent worker goroutine fed through an SPSC ring; a whole
// ProcessBatch is one ring hand-off per shard (batch coalescing).
//
// Sharded itself is single-writer, like the engines it wraps: callers
// serialize Process / ProcessBatch / ApplyPreference / SetAsync / Close
// externally (the public Monitor does so under its write lock).
type Sharded struct {
	shards []ShardEngine
	ctrs   []*stats.Counters // per-shard private counters; monotonic, folded on read
	owner  []int             // user index -> shard index

	// public counter: true Processed count + recovery-folded base
	// (may be nil)
	ctr *stats.Counters

	clusterCount int   // full cluster-list length (0 for user-sharded)
	clusterOwner []int // cluster index -> shard index (nil for user-sharded)

	async     bool           // dispatch through worker goroutines
	workers   []*shardWorker // started lazily on first async dispatch
	wg        sync.WaitGroup // per-call completion barrier, reused
	obj1      [1]object.Object
	results   [][]int   // per-shard result scratch for the merge
	batchOuts [][][]int // per-shard per-object results for async batches
	closed    bool
}

// NewSharded assembles a harness from pre-built shards. ctrs[i] must be
// the private counter shards[i] was built with; owner maps every user
// index to the shard that exclusively maintains its frontier. Shards
// that support scratch-slice reuse get it enabled — the harness never
// hands a shard's internal slice to callers.
func NewSharded(shards []ShardEngine, ctrs []*stats.Counters, owner []int, ctr *stats.Counters) *Sharded {
	if len(shards) != len(ctrs) {
		panic("core: sharded engine needs one counter per shard")
	}
	for _, sh := range shards {
		if se, ok := sh.(scratchEngine); ok {
			se.EnableScratch()
		}
	}
	return &Sharded{
		shards:  shards,
		ctrs:    ctrs,
		owner:   owner,
		ctr:     ctr,
		async:   runtime.GOMAXPROCS(0) > 1 && len(shards) > 1,
		results: make([][]int, len(shards)),
	}
}

// ShardedByUser assembles a harness whose shards own round-robin
// partitions of the user set: shard s gets users s, s+workers, … and a
// private counter, both passed to build. Baseline-style engines (no
// shared tier) shard this way.
func ShardedByUser(userCount, workers int, ctr *stats.Counters, build func(members []int, ctr *stats.Counters) ShardEngine) *Sharded {
	return ShardedByUserActive(userCount, nil, workers, ctr, build)
}

// ShardedByUserActive is ShardedByUser over a user table with removed
// (inactive) slots: every user index keeps an owner so future
// re-activations route consistently, but only active users join a
// shard's member list. active == nil means every user is active.
func ShardedByUserActive(userCount int, active []bool, workers int, ctr *stats.Counters, build func(members []int, ctr *stats.Counters) ShardEngine) *Sharded {
	units := userCount
	if active != nil {
		units = 0
		for _, a := range active {
			if a {
				units++
			}
		}
	}
	workers = ResolveWorkers(workers, units)
	shards := make([]ShardEngine, workers)
	ctrs := make([]*stats.Counters, workers)
	owner := make([]int, userCount)
	perShard := make([][]int, workers)
	for c := 0; c < userCount; c++ {
		s := c % workers
		owner[c] = s
		if active == nil || active[c] {
			perShard[s] = append(perShard[s], c)
		}
	}
	for s := range shards {
		ctrs[s] = &stats.Counters{}
		shards[s] = build(perShard[s], ctrs[s])
	}
	return NewSharded(shards, ctrs, owner, ctr)
}

// ShardedByCluster assembles a harness whose shards own round-robin
// partitions of the cluster list — a cluster's filter frontier and its
// members' frontiers always land on the same shard. build receives the
// shard's cluster subset together with each cluster's index in the full
// list (so per-cluster state stays keyed shard-independently).
// Membership must partition [0, userCount); validate before calling.
func ShardedByCluster(userCount int, clusters []Cluster, workers int, ctr *stats.Counters, build func(clusters []Cluster, globalIdx []int, ctr *stats.Counters) ShardEngine) *Sharded {
	workers = ResolveWorkers(workers, len(clusters))
	shards := make([]ShardEngine, workers)
	ctrs := make([]*stats.Counters, workers)
	owner := make([]int, userCount)
	perShard := make([][]Cluster, workers)
	perShardIdx := make([][]int, workers)
	for i, cl := range clusters {
		s := i % workers
		perShard[s] = append(perShard[s], cl)
		perShardIdx[s] = append(perShardIdx[s], i)
		for _, c := range cl.Members {
			owner[c] = s
		}
	}
	for s := range shards {
		ctrs[s] = &stats.Counters{}
		shards[s] = build(perShard[s], perShardIdx[s], ctrs[s])
	}
	s := NewSharded(shards, ctrs, owner, ctr)
	s.clusterCount = len(clusters)
	s.clusterOwner = make([]int, len(clusters))
	for i := range clusters {
		s.clusterOwner[i] = i % workers
	}
	return s
}

// ResolveWorkers normalizes a worker-count request: n <= 0 means
// GOMAXPROCS, and the count is clamped to the number of independent
// units (clusters or users) available to shard over.
func ResolveWorkers(workers, units int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// SetAsync overrides the dispatch mode chosen at construction
// (goroutine-per-shard when GOMAXPROCS > 1, inline otherwise). Tests
// force both paths; single-core benchmarks force inline. Disabling stops
// any running workers. Single-shard harnesses always stay inline.
func (s *Sharded) SetAsync(on bool) {
	s.async = on && len(s.shards) > 1
	if !s.async {
		s.stopWorkers()
	}
}

// Close releases the worker goroutines. The harness remains usable
// afterwards — a later async dispatch would just restart them — but the
// Monitor calls this exactly once, at its own Close.
func (s *Sharded) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.stopWorkers()
}

func (s *Sharded) stopWorkers() {
	for _, w := range s.workers {
		w.stop()
	}
	s.workers = nil
}

func (s *Sharded) ensureWorkers() {
	if s.workers == nil {
		s.workers = make([]*shardWorker, len(s.shards))
		for i, sh := range s.shards {
			s.workers[i] = newShardWorker(sh)
		}
	}
}

// Process fans the object out to every shard and merges the target
// users. Inline mode runs the shards sequentially in the caller's
// goroutine; async mode rings each shard worker's doorbell and waits.
//
//paretomon:hotpath
func (s *Sharded) Process(o object.Object) []int {
	if s.async {
		s.ensureWorkers()
		s.obj1[0] = o
		s.wg.Add(len(s.workers))
		for i, w := range s.workers {
			w.submit(shardJob{objs: s.obj1[:], out: s.results[i : i+1 : i+1], wg: &s.wg})
		}
		s.wg.Wait()
	} else {
		for i, sh := range s.shards {
			s.results[i] = sh.Process(o)
		}
	}
	s.ctr.AddProcessedN(1)
	return mergeUsers(s.results)
}

// ProcessBatch pipelines a whole batch across the shards. In async mode
// each shard receives the entire batch as one ring hand-off, so
// synchronization happens once per batch rather than once per object;
// inline mode walks the batch object-major. Results are per object, in
// batch order — identical to calling Process object by object.
//
//paretomon:hotpath
func (s *Sharded) ProcessBatch(objs []object.Object) [][]int {
	out := make([][]int, len(objs))
	if s.async && len(objs) > 1 {
		s.ensureWorkers()
		if s.batchOuts == nil {
			s.batchOuts = make([][][]int, len(s.shards))
		}
		for i := range s.batchOuts {
			if cap(s.batchOuts[i]) < len(objs) {
				s.batchOuts[i] = make([][]int, len(objs))
			}
			s.batchOuts[i] = s.batchOuts[i][:len(objs)]
		}
		s.wg.Add(len(s.workers))
		for i, w := range s.workers {
			w.submit(shardJob{objs: objs, out: s.batchOuts[i], wg: &s.wg})
		}
		s.wg.Wait()
		for j := range objs {
			for i := range s.shards {
				s.results[i] = s.batchOuts[i][j]
			}
			out[j] = mergeUsers(s.results)
		}
	} else {
		for j, o := range objs {
			for i, sh := range s.shards {
				s.results[i] = sh.Process(o)
			}
			out[j] = mergeUsers(s.results)
		}
	}
	s.ctr.AddProcessedN(len(objs))
	return out
}

// mergeUsers merges per-shard target-user lists into one fresh sorted
// C_o (nil when empty — the sequential engines' convention). Shards own
// disjoint users, so no deduplication is needed, and each shard's list
// is already sorted, so a single non-empty list just gets copied.
func mergeUsers(results [][]int) []int {
	total, nonEmpty := 0, 0
	for _, r := range results {
		if len(r) > 0 {
			total += len(r)
			nonEmpty++
		}
	}
	if total == 0 {
		return nil
	}
	co := make([]int, 0, total)
	for _, r := range results {
		co = append(co, r...)
	}
	if nonEmpty > 1 {
		sort.Ints(co)
	}
	return co
}

// UserFrontier returns P_c from the shard that owns user c.
func (s *Sharded) UserFrontier(c int) []int {
	return s.shards[s.owner[c]].UserFrontier(c)
}

// Targets returns C_o merged across shards.
func (s *Sharded) Targets(objID int) []int {
	var out []int
	for _, sh := range s.shards {
		out = append(out, sh.Targets(objID)...)
	}
	sort.Ints(out)
	return out
}

// ApplyPreference routes an online preference update to the shard that
// owns the user. The preference profiles are shared across shards, so
// the relation grows once; only the owning shard holds the user's (and
// its cluster's) frontiers, so only it needs to repair.
func (s *Sharded) ApplyPreference(c, d, better, worse int) error {
	return s.shards[s.owner[c]].ApplyPreference(c, d, better, worse)
}

// RegisterUser extends every shard's user table: shards index users
// globally, so the table grows everywhere while only the owner will
// activate the slot.
func (s *Sharded) RegisterUser(c int, p *pref.Profile) {
	for _, sh := range s.shards {
		sh.RegisterUser(c, p)
	}
}

// ActivateUser routes the activation to the owning shard: the shard that
// owns the joined cluster for cluster-sharded engines (founding clusters
// round-robin, continuing the construction-time assignment), round-robin
// over users otherwise.
func (s *Sharded) ActivateUser(c int, cluster int, common *pref.Profile, alive []object.Object) {
	var sh int
	if s.clusterOwner != nil {
		if cluster >= len(s.clusterOwner) {
			sh = cluster % len(s.shards)
			s.clusterOwner = append(s.clusterOwner, sh)
			s.clusterCount = cluster + 1
			for _, e := range s.shards {
				e.SetClusterTotal(s.clusterCount)
			}
		} else {
			sh = s.clusterOwner[cluster]
		}
	} else {
		sh = c % len(s.shards)
	}
	for len(s.owner) <= c {
		s.owner = append(s.owner, 0)
	}
	s.owner[c] = sh
	s.shards[sh].ActivateUser(c, cluster, common, alive)
}

// DeactivateUser blanks the slot on every shard (only the owner holds
// state; the rest no-op).
func (s *Sharded) DeactivateUser(c int) {
	for _, sh := range s.shards {
		sh.DeactivateUser(c)
	}
}

// RemoveUser routes the removal (and its cluster resync) to the owner.
func (s *Sharded) RemoveUser(c int, common *pref.Profile, alive []object.Object) {
	s.shards[s.owner[c]].RemoveUser(c, common, alive)
}

// RetractPreference routes the mend to the shard owning the user's
// frontier (and cluster); the shared profile was already shrunk by the
// caller, once.
func (s *Sharded) RetractPreference(c int, common *pref.Profile, alive []object.Object) {
	s.shards[s.owner[c]].RetractPreference(c, common, alive)
}

// RemoveObject fans the deletion to every shard: each owns disjoint
// frontiers (and, for windowed engines, a private ring) the object may
// occupy.
func (s *Sharded) RemoveObject(o object.Object, alive []object.Object) {
	for _, sh := range s.shards {
		sh.RemoveObject(o, alive)
	}
}

// SetClusterTotal forwards the full-cluster-list length to every shard.
func (s *Sharded) SetClusterTotal(n int) {
	for _, sh := range s.shards {
		sh.SetClusterTotal(n)
	}
}

// SetCommonFn forwards the cluster-relation recompute to every shard.
func (s *Sharded) SetCommonFn(fn CommonFn) {
	for _, sh := range s.shards {
		sh.SetCommonFn(fn)
	}
}

// Shards reports how many workers the engine fans out to.
func (s *Sharded) Shards() int { return len(s.shards) }

// Totals returns the engine-wide work counters: the public counter (true
// Processed count plus any recovery-folded base) plus every shard's
// comparison, filter, verify and delivery counts. Shard Processed counts
// are intentionally excluded — every shard sees every object, so they
// would overcount by the shard factor; they remain visible per shard
// through ShardCounters.
func (s *Sharded) Totals() stats.Counters {
	t := s.ctr.Snapshot()
	for _, c := range s.ctrs {
		sn := c.Snapshot()
		t.Comparisons += sn.Comparisons
		t.FilterComparisons += sn.FilterComparisons
		t.VerifyComparisons += sn.VerifyComparisons
		t.Delivered += sn.Delivered
	}
	return t
}

// ResetShardCounters folds every shard's counters into the public base
// and zeroes the shards. Totals is unchanged by the fold. The Monitor
// calls it after recovery: the public counter was just restored to the
// snapshot's totals and the shard counters hold the replay work, so the
// fold lands the replay work in the public base while the per-shard
// load-skew view restarts from zero.
func (s *Sharded) ResetShardCounters() {
	for _, c := range s.ctrs {
		sn := c.Snapshot()
		c.Reset()
		s.ctr.AddFilter(int(sn.FilterComparisons))
		s.ctr.AddVerify(int(sn.VerifyComparisons))
		s.ctr.AddDelivered(int(sn.Delivered))
	}
}

// ShardCounters returns a snapshot of each shard's cumulative work
// counters, for per-shard observability (load skew across shards). The
// returned slice and its elements are copies — callers can hold them
// across later ingestion without racing the live counters.
func (s *Sharded) ShardCounters() []stats.Counters {
	out := make([]stats.Counters, len(s.ctrs))
	for i, c := range s.ctrs {
		out[i] = c.Snapshot()
	}
	return out
}
