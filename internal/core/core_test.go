package core_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/object"
	"repro/internal/order"
	"repro/internal/pref"
	"repro/internal/stats"
)

// ids converts 1-based paper object numbers to 0-based ids.
func ids(ns ...int) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = n - 1
	}
	sort.Ints(out)
	return out
}

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	if len(out) == 0 {
		return []int{}
	}
	return out
}

func feed(m core.Monitor, objs []object.Object) {
	for _, o := range objs {
		m.Process(o)
	}
}

// laptopFTV builds the paper's single cluster U = {c1, c2} with the given
// common profile (exact U or approximate Û).
func laptopFTV(l *fixtures.Laptops, common *pref.Profile, ctr *stats.Counters) *core.FilterThenVerify {
	return core.NewFilterThenVerify(
		[]*pref.Profile{l.C1, l.C2},
		[]core.Cluster{{Members: []int{0, 1}, Common: common}},
		ctr,
	)
}

func TestBaselinePaperExample(t *testing.T) {
	l := fixtures.NewLaptops()
	b := core.NewBaseline([]*pref.Profile{l.C1, l.C2}, nil)

	feed(b, l.Objects[:14]) // o1..o14

	// Example 4.8: before o15, P_c1 = {o2} and o7 ∈ P_c2.
	if got := sorted(b.UserFrontier(0)); !reflect.DeepEqual(got, ids(2)) {
		t.Fatalf("P_c1 after o14 = %v, want %v", got, ids(2))
	}
	if got := sorted(b.UserFrontier(1)); !reflect.DeepEqual(got, ids(2, 3, 7)) {
		t.Fatalf("P_c2 after o14 = %v, want %v", got, ids(2, 3, 7))
	}

	// Example 1.1 / 3.5: o15 goes to c2 only.
	co15 := b.Process(l.Objects[14])
	if !reflect.DeepEqual(co15, []int{1}) {
		t.Fatalf("C_o15 = %v, want [1]", co15)
	}
	// Example 3.5: P_c1 = {o2}, P_c2 = {o2, o3, o15}.
	if got := sorted(b.UserFrontier(0)); !reflect.DeepEqual(got, ids(2)) {
		t.Fatalf("P_c1 = %v, want %v", got, ids(2))
	}
	if got := sorted(b.UserFrontier(1)); !reflect.DeepEqual(got, ids(2, 3, 15)) {
		t.Fatalf("P_c2 = %v, want %v", got, ids(2, 3, 15))
	}
	// C_o2 = {c1, c2}, C_o3 = C_o15 = {c2} (Example 3.5).
	if got := b.Targets(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("C_o2 = %v", got)
	}
	if got := b.Targets(2); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("C_o3 = %v", got)
	}

	// Sec. 1: o16 reaches nobody.
	if co16 := b.Process(l.Objects[15]); len(co16) != 0 {
		t.Fatalf("C_o16 = %v, want empty", co16)
	}
}

func TestFilterThenVerifyPaperExample(t *testing.T) {
	l := fixtures.NewLaptops()
	ctr := &stats.Counters{}
	f := laptopFTV(l, l.U, ctr)

	feed(f, l.Objects[:14])

	// Example 4.8: P_U = {o2, o3, o7, o10} before o15.
	if got := sorted(f.ClusterFrontier(0)); !reflect.DeepEqual(got, ids(2, 3, 7, 10)) {
		t.Fatalf("P_U after o14 = %v, want %v", got, ids(2, 3, 7, 10))
	}

	co15 := f.Process(l.Objects[14])
	if !reflect.DeepEqual(co15, []int{1}) {
		t.Fatalf("C_o15 = %v, want [1]", co15)
	}
	// Example 4.4 / 4.7: P_U = {o2, o3, o10, o15} (o15 replaced o7).
	if got := sorted(f.ClusterFrontier(0)); !reflect.DeepEqual(got, ids(2, 3, 10, 15)) {
		t.Fatalf("P_U = %v, want %v", got, ids(2, 3, 10, 15))
	}
	if got := sorted(f.UserFrontier(0)); !reflect.DeepEqual(got, ids(2)) {
		t.Fatalf("P_c1 = %v, want %v", got, ids(2))
	}
	if got := sorted(f.UserFrontier(1)); !reflect.DeepEqual(got, ids(2, 3, 15)) {
		t.Fatalf("P_c2 = %v, want %v", got, ids(2, 3, 15))
	}

	// Example 4.8: o16 is filtered out at the cluster tier; no verify
	// comparisons may happen for it.
	verifyBefore := ctr.VerifyComparisons
	if co16 := f.Process(l.Objects[15]); len(co16) != 0 {
		t.Fatalf("C_o16 = %v, want empty", co16)
	}
	if ctr.VerifyComparisons != verifyBefore {
		t.Error("o16 must be rejected by the filter without per-user verification")
	}
}

func TestFilterThenVerifyApproxPaperExample(t *testing.T) {
	l := fixtures.NewLaptops()
	f := laptopFTV(l, l.UHat, nil)

	feed(f, l.Objects[:14])

	// Example 6.3: P̂_U = {o2, o7} before o15; P̂_c2 = {o2, o7}.
	if got := sorted(f.ClusterFrontier(0)); !reflect.DeepEqual(got, ids(2, 7)) {
		t.Fatalf("P̂_U after o14 = %v, want %v", got, ids(2, 7))
	}
	if got := sorted(f.UserFrontier(1)); !reflect.DeepEqual(got, ids(2, 7)) {
		t.Fatalf("P̂_c2 after o14 = %v, want %v", got, ids(2, 7))
	}

	// Example 6.3: o15 replaces o7; Ĉ_o15 = {c2} — identical to the exact
	// target users, "no loss of accuracy in this case".
	co15 := f.Process(l.Objects[14])
	if !reflect.DeepEqual(co15, []int{1}) {
		t.Fatalf("Ĉ_o15 = %v, want [1]", co15)
	}
	if got := sorted(f.ClusterFrontier(0)); !reflect.DeepEqual(got, ids(2, 15)) {
		t.Fatalf("P̂_U = %v, want %v", got, ids(2, 15))
	}
	if got := sorted(f.UserFrontier(0)); !reflect.DeepEqual(got, ids(2)) {
		t.Fatalf("P̂_c1 = %v, want %v", got, ids(2))
	}
	if got := sorted(f.UserFrontier(1)); !reflect.DeepEqual(got, ids(2, 15)) {
		t.Fatalf("P̂_c2 = %v, want %v", got, ids(2, 15))
	}
}

func TestIdenticalObjectsCoexist(t *testing.T) {
	l := fixtures.NewLaptops()
	b := core.NewBaseline([]*pref.Profile{l.C1}, nil)
	b.Process(l.Objects[1]) // o2
	dup := object.Object{ID: 99, Attrs: append([]int32(nil), l.Objects[1].Attrs...)}
	co := b.Process(dup)
	if !reflect.DeepEqual(co, []int{0}) {
		t.Fatalf("duplicate of a Pareto object must be Pareto: C_o = %v", co)
	}
	if got := sorted(b.UserFrontier(0)); !reflect.DeepEqual(got, []int{1, 99}) {
		t.Fatalf("frontier = %v, want both copies", got)
	}
}

func TestTargetsShrinkOnDomination(t *testing.T) {
	l := fixtures.NewLaptops()
	b := core.NewBaseline([]*pref.Profile{l.C1, l.C2}, nil)
	b.Process(l.Objects[0]) // o1 is initially Pareto for both
	if got := b.Targets(0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("C_o1 = %v, want [0 1]", got)
	}
	b.Process(l.Objects[1]) // o2 dominates o1 for both users
	if got := b.Targets(0); got != nil {
		t.Fatalf("C_o1 after o2 = %v, want nil", got)
	}
}

func TestClusterPartitionValidation(t *testing.T) {
	l := fixtures.NewLaptops()
	users := []*pref.Profile{l.C1, l.C2}
	for name, clusters := range map[string][]core.Cluster{
		"missing user":  {{Members: []int{0}, Common: l.U}},
		"duplicate":     {{Members: []int{0, 0}, Common: l.U}},
		"out of range":  {{Members: []int{0, 5}, Common: l.U}},
		"overlap":       {{Members: []int{0, 1}, Common: l.U}, {Members: []int{1}, Common: l.U}},
		"negative user": {{Members: []int{-1, 0}, Common: l.U}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			core.NewFilterThenVerify(users, clusters, nil)
		}()
	}
}

func TestFrontier(t *testing.T) {
	f := core.NewFrontier()
	a := object.Object{ID: 1, Attrs: []int32{0}}
	b := object.Object{ID: 2, Attrs: []int32{1}}
	f.Add(a)
	f.Add(b)
	f.Add(a) // duplicate add is a no-op
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if !f.Contains(1) || f.Contains(3) {
		t.Error("Contains wrong")
	}
	if !f.Remove(1) || f.Remove(1) {
		t.Error("Remove should succeed once")
	}
	if f.Len() != 1 || f.At(0).ID != 2 {
		t.Error("swap-delete broke the list")
	}
	c := f.Clone()
	c.Remove(2)
	if f.Len() != 1 {
		t.Error("Clone not independent")
	}
	if got := f.IDs(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("IDs = %v", got)
	}
	if got := f.Objects(); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("Objects = %v", got)
	}
}

// --- randomized equivalence and invariant tests ---

// randomWorld builds nUsers random profiles over dims attributes with small
// domains, plus nObjs random objects.
func randomWorld(r *rand.Rand, nUsers, dims, domSize, nObjs, edges int) ([]*pref.Profile, []object.Object) {
	doms := make([]*order.Domain, dims)
	for d := range doms {
		doms[d] = order.NewDomain(string(rune('a' + d)))
		for v := 0; v < domSize; v++ {
			doms[d].Intern(string(rune('A' + v)))
		}
	}
	users := make([]*pref.Profile, nUsers)
	for u := range users {
		p := pref.NewProfile(doms)
		for d := 0; d < dims; d++ {
			for e := 0; e < edges; e++ {
				p.Relation(d).Add(r.Intn(domSize), r.Intn(domSize)) // rejections fine
			}
		}
		users[u] = p
	}
	objs := make([]object.Object, nObjs)
	for i := range objs {
		attrs := make([]int32, dims)
		for d := range attrs {
			attrs[d] = int32(r.Intn(domSize))
		}
		objs[i] = object.Object{ID: i, Attrs: attrs}
	}
	return users, objs
}

// bruteFrontier recomputes P_c from scratch by pairwise comparison.
func bruteFrontier(u *pref.Profile, objs []object.Object) []int {
	var out []int
	for _, o := range objs {
		dominated := false
		for _, p := range objs {
			if u.Dominates(p, o) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, o.ID)
		}
	}
	sort.Ints(out)
	if out == nil {
		out = []int{}
	}
	return out
}

// Baseline's incremental frontier equals the from-scratch frontier.
func TestQuickBaselineMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users, objs := randomWorld(r, 3, 3, 5, 60, 6)
		b := core.NewBaseline(users, nil)
		feed(b, objs)
		for c, u := range users {
			if !reflect.DeepEqual(sorted(b.UserFrontier(c)), bruteFrontier(u, objs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FilterThenVerify with exact common preferences is equivalent to Baseline
// (Lemma 4.6), and Theorem 4.5's containment P_c ⊆ P_U holds throughout.
func TestQuickFTVEquivalentToBaseline(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users, objs := randomWorld(r, 4, 3, 5, 50, 6)
		clusters := []core.Cluster{
			{Members: []int{0, 1}, Common: pref.Common([]*pref.Profile{users[0], users[1]})},
			{Members: []int{2, 3}, Common: pref.Common([]*pref.Profile{users[2], users[3]})},
		}
		b := core.NewBaseline(users, nil)
		ftv := core.NewFilterThenVerify(users, clusters, nil)
		for _, o := range objs {
			cb := sorted(b.Process(o))
			cf := sorted(ftv.Process(o))
			if !reflect.DeepEqual(cb, cf) {
				return false
			}
		}
		for c := range users {
			if !reflect.DeepEqual(sorted(b.UserFrontier(c)), sorted(ftv.UserFrontier(c))) {
				return false
			}
		}
		// Theorem 4.5: P_U ⊇ P_c for every member.
		for ui, cl := range ftv.Clusters() {
			pu := map[int]bool{}
			for _, id := range ftv.ClusterFrontier(ui) {
				pu[id] = true
			}
			for _, c := range cl.Members {
				for _, id := range ftv.UserFrontier(c) {
					if !pu[id] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// With approximate relations that subsume the exact common relation,
// Theorem 6.5 (P̂_U ⊆ P_U) and Theorem 6.7 (P̂_U ∩ P_c ⊆ P̂_c) hold; and
// precision property: objects in P̂_c that are in P_U... (the paper's V
// region) are still a subset of P̂_U (Lemma 6.6).
func TestQuickApproxContainments(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users, objs := randomWorld(r, 3, 2, 5, 40, 5)
		common := pref.Common(users)
		// Build an approximate profile: common plus a few random extra
		// tuples (kept as a valid SPO by Add's rejection).
		approx := common.Clone()
		for d := 0; d < approx.Dims(); d++ {
			for e := 0; e < 4; e++ {
				approx.Relation(d).Add(r.Intn(5), r.Intn(5))
			}
		}
		members := []int{0, 1, 2}
		exact := core.NewFilterThenVerify(users, []core.Cluster{{Members: members, Common: common}}, nil)
		ap := core.NewFilterThenVerify(users, []core.Cluster{{Members: members, Common: approx}}, nil)
		feed(exact, objs)
		feed(ap, objs)

		pu := map[int]bool{}
		for _, id := range exact.ClusterFrontier(0) {
			pu[id] = true
		}
		puHat := map[int]bool{}
		for _, id := range ap.ClusterFrontier(0) {
			puHat[id] = true
		}
		// Theorem 6.5: P̂_U ⊆ P_U.
		for id := range puHat {
			if !pu[id] {
				return false
			}
		}
		// Theorem 6.7: P̂_U ∩ P_c ⊆ P̂_c, and Lemma 6.6: P̂_c ⊆ P̂_U.
		b := core.NewBaseline(users, nil)
		feed(b, objs)
		for c := range users {
			pcHat := map[int]bool{}
			for _, id := range ap.UserFrontier(c) {
				pcHat[id] = true
				if !puHat[id] {
					return false // Lemma 6.6 violated
				}
			}
			for _, id := range b.UserFrontier(c) {
				if puHat[id] && !pcHat[id] {
					return false // Theorem 6.7 violated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Shared computation must not change results across cluster granularities:
// one big cluster vs singleton clusters vs Baseline.
func TestQuickClusterGranularityInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users, objs := randomWorld(r, 3, 2, 4, 40, 5)
		big := core.NewFilterThenVerify(users, []core.Cluster{
			{Members: []int{0, 1, 2}, Common: pref.Common(users)},
		}, nil)
		var singles []core.Cluster
		for c := range users {
			singles = append(singles, core.Cluster{Members: []int{c}, Common: users[c].Clone()})
		}
		sing := core.NewFilterThenVerify(users, singles, nil)
		b := core.NewBaseline(users, nil)
		feed(big, objs)
		feed(sing, objs)
		feed(b, objs)
		for c := range users {
			want := sorted(b.UserFrontier(c))
			if !reflect.DeepEqual(sorted(big.UserFrontier(c)), want) {
				return false
			}
			if !reflect.DeepEqual(sorted(sing.UserFrontier(c)), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestComparisonAccounting(t *testing.T) {
	l := fixtures.NewLaptops()
	ctr := &stats.Counters{}
	b := core.NewBaseline([]*pref.Profile{l.C1, l.C2}, ctr)
	feed(b, l.Objects)
	if ctr.Processed != 16 {
		t.Errorf("Processed = %d", ctr.Processed)
	}
	if ctr.FilterComparisons != 0 {
		t.Errorf("Baseline must not count filter comparisons, got %d", ctr.FilterComparisons)
	}
	if ctr.Comparisons == 0 || ctr.Comparisons != ctr.VerifyComparisons {
		t.Errorf("comparisons accounting broken: %v", ctr)
	}
	if ctr.Delivered == 0 {
		t.Error("Delivered should be positive")
	}

	ctr2 := &stats.Counters{}
	f := laptopFTV(l, l.U, ctr2)
	feed(f, l.Objects)
	if ctr2.FilterComparisons == 0 || ctr2.VerifyComparisons == 0 {
		t.Errorf("FTV should count both tiers: %v", ctr2)
	}
	if ctr2.Comparisons != ctr2.FilterComparisons+ctr2.VerifyComparisons {
		t.Errorf("comparison sum mismatch: %v", ctr2)
	}
}
