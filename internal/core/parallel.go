package core

import (
	"repro/internal/pref"
	"repro/internal/stats"
)

// ParallelFilterThenVerify runs Alg. 2 with the clusters partitioned
// across worker goroutines. Clusters are independent by construction —
// each owns its filter frontier and its members' frontiers, and the user
// sets are disjoint — so the only shared state is the work counters,
// which each worker accumulates privately and merges after every call.
// Results are identical to FilterThenVerify; per-object latency drops on
// multi-core hosts once there are enough clusters to amortize the
// fan-out, and ProcessBatch pipelines whole batches through the shards
// with one synchronization per batch.
//
// This is an engineering extension beyond the paper (its experiments are
// single-threaded); the equivalence tests in parallel_test.go pin the
// semantics to the sequential engine.
type ParallelFilterThenVerify struct {
	*Sharded
}

// NewParallelFilterThenVerify distributes the clusters over at most
// workers goroutines (0 means GOMAXPROCS). Cluster membership must
// partition the user set, as with NewFilterThenVerify.
func NewParallelFilterThenVerify(users []*pref.Profile, clusters []Cluster, workers int, ctr *stats.Counters) *ParallelFilterThenVerify {
	ValidatePartition(users, clusters)
	return NewParallelFilterThenVerifyFor(users, clusters, workers, ctr)
}

// NewParallelFilterThenVerifyFor builds the sharded engine without the
// full-partition check: removed users belong to no cluster and dormant
// clusters ride along as placeholders. Recovery of an evolved community
// uses it; fresh monitors go through NewParallelFilterThenVerify.
func NewParallelFilterThenVerifyFor(users []*pref.Profile, clusters []Cluster, workers int, ctr *stats.Counters) *ParallelFilterThenVerify {
	// Each shard gets an engine built over the full user slice but only
	// its own clusters (the unused users' frontiers stay empty and cost
	// nothing).
	total := len(clusters)
	return &ParallelFilterThenVerify{Sharded: ShardedByCluster(len(users), clusters, workers, ctr,
		func(clusters []Cluster, globalIdx []int, ctr *stats.Counters) ShardEngine {
			return newShard(users, clusters, globalIdx, total, ctr)
		})}
}

// newShard builds a FilterThenVerify over a subset of clusters without
// the partition check (the parallel constructor already validated the
// whole configuration). globalIdx maps the subset back into the full
// cluster list of total entries. User frontiers exist only for the
// shard's own cluster members — the harness routes per-user calls to
// the owning shard, so other slots are never dereferenced.
func newShard(users []*pref.Profile, clusters []Cluster, globalIdx []int, total int, ctr *stats.Counters) *FilterThenVerify {
	f := &FilterThenVerify{
		users:         users,
		clusters:      clusters,
		clusterFronts: make([]*Frontier, len(clusters)),
		userFronts:    make([]*Frontier, len(users)),
		targets:       newTargetTracker(),
		ctr:           ctr,
		globalIdx:     globalIdx,
		total:         total,
	}
	for i := range f.clusterFronts {
		f.clusterFronts[i] = NewFrontier()
	}
	for _, cl := range clusters {
		for _, c := range cl.Members {
			f.userFronts[c] = NewFrontier()
		}
	}
	return f
}
