package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/object"
	"repro/internal/pref"
	"repro/internal/stats"
)

// ParallelFilterThenVerify runs Alg. 2 with the clusters partitioned
// across worker goroutines. Clusters are independent by construction —
// each owns its filter frontier and its members' frontiers, and the user
// sets are disjoint — so the only shared state is the work counters,
// which each worker accumulates privately and merges under a mutex at the
// end of every Process call. Results are identical to FilterThenVerify;
// per-object latency drops on multi-core hosts once there are enough
// clusters to amortize the fan-out.
//
// This is an engineering extension beyond the paper (its experiments are
// single-threaded); the equivalence tests in parallel_test.go pin the
// semantics to the sequential engine.
type ParallelFilterThenVerify struct {
	shards []*FilterThenVerify // one engine per worker, disjoint clusters
	owner  []int               // user -> shard index
	ctr    *stats.Counters
	mu     sync.Mutex
}

// NewParallelFilterThenVerify distributes the clusters over at most
// workers goroutines (0 means GOMAXPROCS). Cluster membership must
// partition the user set, as with NewFilterThenVerify.
func NewParallelFilterThenVerify(users []*pref.Profile, clusters []Cluster, workers int, ctr *stats.Counters) *ParallelFilterThenVerify {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(clusters) {
		workers = len(clusters)
	}
	if workers < 1 {
		workers = 1
	}
	// Validate the full partition once, with the sequential constructor's
	// rules, before sharding.
	NewFilterThenVerify(users, clusters, nil)

	p := &ParallelFilterThenVerify{
		shards: make([]*FilterThenVerify, workers),
		owner:  make([]int, len(users)),
		ctr:    ctr,
	}
	// Round-robin clusters over shards; each shard gets engines built over
	// the full user slice but only its own clusters (the unused users'
	// frontiers stay empty and cost nothing).
	perShard := make([][]Cluster, workers)
	for i, cl := range clusters {
		s := i % workers
		perShard[s] = append(perShard[s], cl)
		for _, c := range cl.Members {
			p.owner[c] = s
		}
	}
	for s := range p.shards {
		p.shards[s] = newShard(users, perShard[s])
	}
	return p
}

// newShard builds a FilterThenVerify over a subset of clusters without
// the partition check (the parallel constructor already validated the
// whole configuration).
func newShard(users []*pref.Profile, clusters []Cluster) *FilterThenVerify {
	f := &FilterThenVerify{
		users:         users,
		clusters:      clusters,
		clusterFronts: make([]*Frontier, len(clusters)),
		userFronts:    make([]*Frontier, len(users)),
		targets:       newTargetTracker(),
		ctr:           &stats.Counters{},
	}
	for i := range f.clusterFronts {
		f.clusterFronts[i] = NewFrontier()
	}
	for i := range f.userFronts {
		f.userFronts[i] = NewFrontier()
	}
	return f
}

// Process fans the object out to every shard concurrently and merges the
// target users.
func (p *ParallelFilterThenVerify) Process(o object.Object) []int {
	if len(p.shards) == 1 {
		co := p.shards[0].Process(o)
		p.mergeCounters()
		return co
	}
	results := make([][]int, len(p.shards))
	var wg sync.WaitGroup
	for s := range p.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = p.shards[s].Process(o)
		}(s)
	}
	wg.Wait()
	var co []int
	for _, r := range results {
		co = append(co, r...)
	}
	sort.Ints(co)
	p.mergeCounters()
	return co
}

// mergeCounters folds the shards' private counters into the public one.
// Each shard's counter is drained so the merge stays O(shards) per call.
func (p *ParallelFilterThenVerify) mergeCounters() {
	if p.ctr == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, sh := range p.shards {
		s := sh.ctr.Snapshot()
		p.ctr.AddFilter(int(s.FilterComparisons))
		p.ctr.AddVerify(int(s.VerifyComparisons))
		p.ctr.AddDelivered(int(s.Delivered))
		sh.ctr.Reset()
	}
	p.ctr.AddProcessed()
}

// UserFrontier returns P_c from the shard that owns user c.
func (p *ParallelFilterThenVerify) UserFrontier(c int) []int {
	return p.shards[p.owner[c]].UserFrontier(c)
}

// Targets returns C_o merged across shards.
func (p *ParallelFilterThenVerify) Targets(objID int) []int {
	var out []int
	for _, sh := range p.shards {
		out = append(out, sh.Targets(objID)...)
	}
	sort.Ints(out)
	return out
}

// Shards reports how many workers the engine fans out to.
func (p *ParallelFilterThenVerify) Shards() int { return len(p.shards) }
