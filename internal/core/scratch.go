package core

// ResultScratch is an optional reusable C_o slice for engines driven as
// shards. Disabled (the zero value, sequential engines), Start returns
// nil and every Process allocates a fresh result — callers may retain
// it. Enabled (Sharded calls EnableScratch on every shard it drives),
// the engine appends into one buffer reused across Process calls; the
// harness copies results into its own merged slice before the next call,
// so nothing outside the harness ever sees the alias.
type ResultScratch struct {
	enabled bool
	buf     []int
}

// Enable switches the owning engine to scratch-slice reuse.
func (s *ResultScratch) Enable() { s.enabled = true }

// Start returns the slice to append results into for one Process call.
func (s *ResultScratch) Start() []int {
	if s.enabled {
		return s.buf[:0]
	}
	return nil
}

// Finish records the (possibly regrown) slice for the next call and
// returns it.
func (s *ResultScratch) Finish(co []int) []int {
	if s.enabled {
		s.buf = co
	}
	return co
}
