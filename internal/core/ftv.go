package core

import (
	"fmt"
	"sort"

	"repro/internal/object"
	"repro/internal/pref"
	"repro/internal/stats"
)

// Cluster groups users who share computation: Members are user indices and
// Common is the virtual user U — the common preference relation ≻_U of
// Def. 4.1 for FilterThenVerify, or the approximate relation ≻̂_U of
// Def. 6.1 for FilterThenVerifyApprox.
type Cluster struct {
	Members []int
	Common  *pref.Profile
}

// FilterThenVerify is Alg. 2. Per cluster it maintains a filter frontier
// P_U under the cluster's common preferences; an arriving object is
// compared per user only if it survives the filter (Theorem 4.5 guarantees
// the filter discards only true negatives). With approximate common
// relations the same engine computes P̂_U ⊇ P̂_c and becomes
// FilterThenVerifyApprox, trading exactness (Sec. 6.2's false negatives /
// positives) for larger clusters.
type FilterThenVerify struct {
	users         []*pref.Profile
	clusters      []Cluster
	clusterFronts []*Frontier // P_U per cluster
	userFronts    []*Frontier // P_c per user
	targets       *targetTracker
	ctr           *stats.Counters
	scratch       ResultScratch

	// commonFn recomputes a cluster's common relation when membership or
	// member preferences change online; nil means pref.Common (the exact
	// engines). The monitor wires approx.Profile for the approximate one.
	commonFn CommonFn

	// globalIdx maps local cluster indices to the monitor's full cluster
	// list and total is that list's length; both are set only for shard
	// instances, whose clusters field is a round-robin subset. State
	// capture uses them to key per-cluster state shard-independently.
	globalIdx []int
	total     int
}

// ValidatePartition panics unless cluster membership partitions the user
// set exactly — a missed user would silently never receive objects. All
// filter-then-verify constructors (sequential, sharded, windowed) run it
// before building frontiers.
func ValidatePartition(users []*pref.Profile, clusters []Cluster) {
	seen := make([]bool, len(users))
	for _, cl := range clusters {
		for _, c := range cl.Members {
			if c < 0 || c >= len(users) || seen[c] {
				panic("core: cluster membership must partition the user set")
			}
			seen[c] = true
		}
	}
	for c, ok := range seen {
		if !ok {
			panic(fmt.Sprintf("core: user %d not covered by any cluster", c))
		}
	}
}

// NewFilterThenVerifyFor builds the engine over a cluster list that need
// not cover every user: removed users belong to no cluster and dormant
// (memberless) clusters are carried as placeholders so cluster indices
// stay stable. Recovery of an evolved community uses it; fresh monitors
// use NewFilterThenVerify, which insists on a full partition.
func NewFilterThenVerifyFor(users []*pref.Profile, clusters []Cluster, ctr *stats.Counters) *FilterThenVerify {
	return newShard(users, clusters, nil, len(clusters), ctr)
}

// NewFilterThenVerify builds the engine. Every user must belong to exactly
// one cluster; the constructor panics otherwise.
func NewFilterThenVerify(users []*pref.Profile, clusters []Cluster, ctr *stats.Counters) *FilterThenVerify {
	ValidatePartition(users, clusters)
	f := &FilterThenVerify{
		users:         users,
		clusters:      clusters,
		clusterFronts: make([]*Frontier, len(clusters)),
		userFronts:    make([]*Frontier, len(users)),
		targets:       newTargetTracker(),
		ctr:           ctr,
	}
	for i := range f.clusterFronts {
		f.clusterFronts[i] = NewFrontier()
	}
	for i := range f.userFronts {
		f.userFronts[i] = NewFrontier()
	}
	return f
}

// Process implements Alg. 2: filter per cluster, then verify per member.
// Clusters whose last member was removed are dormant and skipped.
func (f *FilterThenVerify) Process(o object.Object) []int {
	f.ctr.AddProcessed()
	co := f.scratch.Start()
	for ui := range f.clusters {
		if len(f.clusters[ui].Members) == 0 {
			continue
		}
		if f.updateClusterFrontier(ui, o) {
			for _, c := range f.clusters[ui].Members {
				if f.verifyUser(c, o) {
					co = append(co, c)
				}
			}
		}
	}
	sort.Ints(co)
	f.ctr.AddDelivered(len(co))
	return f.scratch.Finish(co)
}

// EnableScratch switches Process to a reused result slice; only the
// sharded harness (which copies results out) enables it.
func (f *FilterThenVerify) EnableScratch() { f.scratch.Enable() }

// updateClusterFrontier is Procedure updateParetoFrontierU(U, o) of Alg. 2.
// Comparisons here are the shared, filter-tier work.
func (f *FilterThenVerify) updateClusterFrontier(ui int, o object.Object) bool {
	cl := f.clusters[ui]
	fu := f.clusterFronts[ui]
	isPareto := true
scan:
	for i := 0; i < fu.Len(); {
		op := fu.At(i)
		f.ctr.AddFilter(1)
		switch cl.Common.Compare(o, op) {
		case pref.Left:
			// o ≻_U o': o' leaves P_U and, per Lines 4-6, every member's
			// P_c (P_c ⊆ P_U is the engine's standing invariant).
			fu.Remove(op.ID)
			for _, c := range cl.Members {
				if f.userFronts[c].Remove(op.ID) {
					f.targets.remove(op.ID, c)
				}
			}
		case pref.Right:
			// o'≻_U o: by Theorem 4.5 o is outside every member's frontier.
			isPareto = false
			break scan
		case pref.Identical:
			// o' = o: o is Pareto-optimal in P_U, and anything o would
			// remove was already removed when its twin arrived. Alg. 2's
			// pseudocode omits this case; we adopt Alg. 1's identical
			// short-circuit, which matters on catalogs with duplicate
			// attribute combinations.
			break scan
		default: // Incomparable: keep scanning
			i++
		}
	}
	if isPareto {
		fu.Add(o)
	}
	return isPareto
}

// verifyUser discerns the "false positives" of the filter tier for one
// member (Alg. 2 Line 6 → Alg. 1's updateParetoFrontier against P_c).
func (f *FilterThenVerify) verifyUser(c int, o object.Object) bool {
	u := f.users[c]
	fc := f.userFronts[c]
	isPareto := true
scan:
	for i := 0; i < fc.Len(); {
		op := fc.At(i)
		f.ctr.AddVerify(1)
		switch u.Compare(o, op) {
		case pref.Left:
			fc.Remove(op.ID)
			f.targets.remove(op.ID, c)
		case pref.Right:
			isPareto = false
			break scan
		case pref.Identical:
			break scan
		default:
			i++
		}
	}
	if isPareto {
		fc.Add(o)
		f.targets.add(o.ID, c)
	}
	return isPareto
}

// UserFrontier returns P_c (P̂_c under approximate relations) as object ids.
func (f *FilterThenVerify) UserFrontier(c int) []int { return f.userFronts[c].IDs() }

// ClusterFrontier returns P_U (P̂_U) of cluster ui as object ids.
func (f *FilterThenVerify) ClusterFrontier(ui int) []int { return f.clusterFronts[ui].IDs() }

// Targets returns the current C_o of a previously processed object.
func (f *FilterThenVerify) Targets(objID int) []int { return f.targets.users(objID) }

// Clusters returns the engine's cluster configuration.
func (f *FilterThenVerify) Clusters() []Cluster { return f.clusters }
