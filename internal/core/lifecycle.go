package core

import (
	"repro/internal/object"
	"repro/internal/pref"
)

// Lifecycle operations on the append-only engines: the community and the
// object set become mutable after construction. Each operation mirrors a
// public Monitor call; validation and WAL logging happen above, so the
// engine methods only transform state (and count the comparisons the
// transformation performs).
//
// The central mechanism is frontier *mending* — the inverse of the
// arrival scan. Retracting a preference tuple or deleting an object
// removes dominance pairs, so objects the frontier previously rejected
// can become Pareto-optimal again. The windowed engines already mend on
// expiry (Alg. 4/5's mendParetoFrontierSW); here the same mechanism is
// exposed as a first-class operation for the append-only engines, with
// the alive-object registry standing in for the window ring as the
// candidate source.
//
// Correctness of mendFrontier's candidate check: a candidate x enters
// the new frontier iff no alive object dominates it. It suffices to test
// x against the surviving frontier members and the other candidates: any
// alive dominator z outside both is itself dominated by a frontier
// member w (append-only invariant: every non-frontier alive object has a
// frontier dominator, transitively), and w — which survives, since
// frontiers only grow under retraction/removal mends — dominates x
// transitively.

// CommonFn recomputes a cluster's common preference relation from its
// member profiles. The exact engines use pref.Common (Def. 4.1); the
// approximate engine substitutes approx.Profile so cluster relations
// stay in the approximate regime across membership and preference
// changes.
type CommonFn func(members []*pref.Profile) *pref.Profile

// LifecycleEngine is the mutation surface every engine (sequential and
// sharded, append-only and windowed) implements for the v3 lifecycle
// API. Indices are monitor-global: c is the user's construction-order
// slot, cluster the index into the monitor's full cluster list. alive
// holds every currently alive object in arrival order; windowed engines
// ignore it and consult their ring instead.
type LifecycleEngine interface {
	// RegisterUser extends the engine's user table with profile p at slot
	// c (== current table length). The user owns no frontier until
	// ActivateUser runs; split so sharded harnesses can grow every
	// shard's table while only the owning shard activates.
	RegisterUser(c int, p *pref.Profile)
	// ActivateUser gives user c a live frontier built over the alive
	// objects. For clustered engines, cluster selects the joined cluster
	// (== cluster-list length to found a new one) and common is the
	// cluster's recomputed common relation including c.
	ActivateUser(c int, cluster int, common *pref.Profile, alive []object.Object)
	// DeactivateUser drops user c's structures without any mending; used
	// during recovery to blank the slots of removed users.
	DeactivateUser(c int)
	// RemoveUser removes user c: its frontier disappears and, for
	// clustered engines, its cluster's common relation becomes common
	// (recomputed without c; nil when the cluster emptied) with the
	// filter tier resynced.
	RemoveUser(c int, common *pref.Profile, alive []object.Object)
	// RetractPreference mends user c's frontier after the caller removed
	// a tuple from c's (shared) profile; common is the cluster's
	// recomputed relation for clustered engines (nil for baselines).
	RetractPreference(c int, common *pref.Profile, alive []object.Object)
	// RemoveObject deletes o from every structure it occupies and mends
	// the frontiers it was shielding. alive excludes o already.
	RemoveObject(o object.Object, alive []object.Object)
}

var (
	_ LifecycleEngine = (*Baseline)(nil)
	_ LifecycleEngine = (*FilterThenVerify)(nil)
	_ LifecycleEngine = (*Sharded)(nil)
)

// drop forgets an object entirely (its C_o becomes empty).
func (t *targetTracker) drop(objID int) {
	if objID >= 0 && objID < len(t.sets) {
		t.sets[objID] = nil
	}
}

// MendFrontier admits candidates into f. A candidate enters iff neither
// a pre-existing frontier member nor another candidate dominates it
// under p; every dominance test invokes count. cands must be in arrival
// order, disjoint from f, and — together with f — cover every alive
// object that could dominate a candidate (see the package comment).
// Returns the admitted objects.
func MendFrontier(f *Frontier, cands []object.Object, p *pref.Profile, count func(int)) []object.Object {
	preLen := f.Len() // members admitted during the mend sit past this
	var admitted []object.Object
	for i, x := range cands {
		dominated := false
		for j := 0; j < preLen && !dominated; j++ {
			count(1)
			dominated = p.Dominates(f.At(j), x)
		}
		for j := 0; j < len(cands) && !dominated; j++ {
			if j == i {
				continue
			}
			count(1)
			dominated = p.Dominates(cands[j], x)
		}
		if !dominated {
			f.Add(x)
			admitted = append(admitted, x)
		}
	}
	return admitted
}

// --- Baseline ---

// RegisterUser appends profile p as user c. The slot stays frontierless
// until ActivateUser.
func (b *Baseline) RegisterUser(c int, p *pref.Profile) {
	if c != len(b.users) {
		panic("core: RegisterUser out of order")
	}
	b.users = append(b.users, p)
	b.fronts = append(b.fronts, nil)
}

// ActivateUser builds user c's frontier by replaying the alive objects
// through the standard arrival scan (cluster and common are ignored:
// Baseline has no shared tier).
func (b *Baseline) ActivateUser(c int, _ int, _ *pref.Profile, alive []object.Object) {
	if b.members != nil {
		b.members = append(b.members, c)
	}
	b.fronts[c] = NewFrontier()
	for _, o := range alive {
		b.updateUser(c, o)
	}
}

// DeactivateUser blanks user c's slot without mending (recovery path).
func (b *Baseline) DeactivateUser(c int) {
	b.fronts[c] = nil
	b.dropMember(c)
}

func (b *Baseline) dropMember(c int) {
	for i, m := range b.members {
		if m == c {
			b.members = append(b.members[:i], b.members[i+1:]...)
			return
		}
	}
}

// RemoveUser drops user c's frontier and target entries.
func (b *Baseline) RemoveUser(c int, _ *pref.Profile, _ []object.Object) {
	if b.fronts[c] == nil {
		return
	}
	for _, id := range b.fronts[c].IDs() {
		b.targets.remove(id, c)
	}
	b.DeactivateUser(c)
}

// RetractPreference mends user c's frontier after the caller shrank c's
// preference relation: candidates are every alive non-frontier object
// (any of them may have lost its last dominator).
func (b *Baseline) RetractPreference(c int, _ *pref.Profile, alive []object.Object) {
	f := b.fronts[c]
	var cands []object.Object
	for _, x := range alive {
		if !f.Contains(x.ID) {
			cands = append(cands, x)
		}
	}
	for _, x := range MendFrontier(f, cands, b.users[c], b.ctr.AddVerify) {
		b.targets.add(x.ID, c)
	}
}

// RemoveObject deletes o and, for every user whose frontier held it,
// promotes the alive objects whose only frontier shield was o.
func (b *Baseline) RemoveObject(o object.Object, alive []object.Object) {
	b.each(func(c int) {
		f := b.fronts[c]
		if !f.Remove(o.ID) {
			return // o was dominated for c: its dominator still shields everything o did
		}
		b.targets.remove(o.ID, c)
		u := b.users[c]
		var cands []object.Object
		for _, x := range alive {
			if f.Contains(x.ID) {
				continue
			}
			b.ctr.AddVerify(1)
			if u.Dominates(o, x) {
				cands = append(cands, x)
			}
		}
		for _, x := range MendFrontier(f, cands, u, b.ctr.AddVerify) {
			b.targets.add(x.ID, c)
		}
	})
	b.targets.drop(o.ID)
}

// --- FilterThenVerify ---

// common recomputes a cluster relation from member profiles through the
// configured CommonFn (exact intersection by default).
func (f *FilterThenVerify) common(members []int) *pref.Profile {
	ps := make([]*pref.Profile, len(members))
	for i, m := range members {
		ps[i] = f.users[m]
	}
	if f.commonFn != nil {
		return f.commonFn(ps)
	}
	return pref.Common(ps)
}

// SetCommonFn installs the cluster-relation recompute used by online
// preference updates (the monitor wires approx.Profile for the
// approximate engine).
func (f *FilterThenVerify) SetCommonFn(fn CommonFn) { f.commonFn = fn }

// SetClusterTotal grows the full-cluster-list length a shard instance
// keys its state against; no-op on the sequential engine, whose local
// list is the full list.
func (f *FilterThenVerify) SetClusterTotal(n int) {
	if f.globalIdx != nil && n > f.total {
		f.total = n
	}
}

// localCluster maps a monitor-global cluster index to this instance's
// local list, or -1 if another shard owns it.
func (f *FilterThenVerify) localCluster(cluster int) int {
	if f.globalIdx == nil {
		if cluster < len(f.clusters) {
			return cluster
		}
		return -1
	}
	for li, gi := range f.globalIdx {
		if gi == cluster {
			return li
		}
	}
	return -1
}

// RegisterUser appends profile p as user c (no frontier yet).
func (f *FilterThenVerify) RegisterUser(c int, p *pref.Profile) {
	if c != len(f.users) {
		panic("core: RegisterUser out of order")
	}
	f.users = append(f.users, p)
	f.userFronts = append(f.userFronts, nil)
}

// ActivateUser joins user c to the given cluster (or founds it when the
// index is one past the current list), resyncs the cluster's filter tier
// under the recomputed common relation, and builds c's frontier from the
// filter frontier by the Lemma 4.6 criterion.
func (f *FilterThenVerify) ActivateUser(c int, cluster int, common *pref.Profile, alive []object.Object) {
	f.userFronts[c] = NewFrontier()
	li := f.localCluster(cluster)
	if li < 0 {
		// Found a new cluster owned by this instance.
		li = len(f.clusters)
		f.clusters = append(f.clusters, Cluster{Members: []int{c}, Common: common})
		f.clusterFronts = append(f.clusterFronts, NewFrontier())
		if f.globalIdx != nil {
			f.globalIdx = append(f.globalIdx, cluster)
			if cluster+1 > f.total {
				f.total = cluster + 1
			}
		}
		for _, o := range alive {
			f.updateClusterFrontier(li, o)
		}
	} else {
		cl := &f.clusters[li]
		old := cl.Common
		cl.Common = common
		cl.Members = append(cl.Members, c)
		f.resyncCluster(li, old, alive)
	}
	f.mendMemberFrontier(li, c)
}

// mendMemberFrontier admits missing filter-frontier objects into a
// member frontier: x enters P_c iff no other filter-frontier member
// dominates x under ≻_c (Lemma 4.6; exact whenever ≻_U ⊆ ≻_c). Over an
// empty frontier it builds P_c from scratch (ActivateUser).
func (f *FilterThenVerify) mendMemberFrontier(li, c int) {
	fu := f.clusterFronts[li]
	u := f.users[c]
	fc := f.userFronts[c]
	for _, x := range fu.Objects() {
		if fc.Contains(x.ID) {
			continue
		}
		dominated := false
		for j := 0; j < fu.Len() && !dominated; j++ {
			op := fu.At(j)
			if op.ID == x.ID {
				continue
			}
			f.ctr.AddVerify(1)
			dominated = u.Dominates(op, x)
		}
		if !dominated {
			fc.Add(x)
			f.targets.add(x.ID, c)
		}
	}
}

// DeactivateUser blanks user c's slot without mending (recovery path).
func (f *FilterThenVerify) DeactivateUser(c int) { f.userFronts[c] = nil }

// RemoveUser drops user c from its cluster. The shrunken membership
// can only grow the common relation for exact engines (intersection of
// fewer members), shrinking the filter frontier; resyncCluster also
// covers the approximate engine, where the relation may move either way.
// An emptied cluster goes dormant: its structures clear and Process
// skips it.
func (f *FilterThenVerify) RemoveUser(c int, common *pref.Profile, alive []object.Object) {
	li := f.clusterOf(c)
	cl := &f.clusters[li]
	for i, m := range cl.Members {
		if m == c {
			cl.Members = append(cl.Members[:i], cl.Members[i+1:]...)
			break
		}
	}
	for _, id := range f.userFronts[c].IDs() {
		f.targets.remove(id, c)
	}
	f.userFronts[c] = nil
	if len(cl.Members) == 0 {
		cl.Common = nil
		f.clusterFronts[li] = NewFrontier()
		return
	}
	old := cl.Common
	cl.Common = common
	f.resyncCluster(li, old, alive)
}

// RetractPreference resyncs user c's cluster under the recomputed common
// relation (the caller already shrank c's shared profile), then mends
// c's own frontier from the filter frontier.
func (f *FilterThenVerify) RetractPreference(c int, common *pref.Profile, alive []object.Object) {
	li := f.clusterOf(c)
	cl := &f.clusters[li]
	old := cl.Common
	cl.Common = common
	f.resyncCluster(li, old, alive)
	f.mendMemberFrontier(li, c)
}

// resyncCluster reconciles the filter frontier with a changed common
// relation. The direction decides the work: a grown relation (new ⊇ old)
// can only evict members — the pairwise filter; a shrunken one (new ⊆
// old) can only admit — the alive-candidate mend. The approximate
// engine's relation can move both ways at once (the θ1 cap displaces
// tuples), so an incomparable change runs both phases.
func (f *FilterThenVerify) resyncCluster(li int, old *pref.Profile, alive []object.Object) {
	cl := &f.clusters[li]
	super := cl.Common.Subsumes(old)
	sub := old.Subsumes(cl.Common)
	if super && sub {
		return // unchanged
	}
	if !sub {
		f.filterClusterFrontier(li)
	}
	if !super {
		fu := f.clusterFronts[li]
		var cands []object.Object
		for _, x := range alive {
			if !fu.Contains(x.ID) {
				cands = append(cands, x)
			}
		}
		MendFrontier(fu, cands, cl.Common, f.ctr.AddFilter)
	}
}

// filterClusterFrontier evicts filter-frontier members dominated under
// the (grown) common relation, propagating each eviction to the member
// frontiers (P_c ⊆ P_U is the engine invariant).
func (f *FilterThenVerify) filterClusterFrontier(li int) {
	cl := &f.clusters[li]
	fu := f.clusterFronts[li]
	ids := append([]int(nil), fu.IDs()...)
	for _, id := range ids {
		o, ok := fu.ByID(id)
		if !ok {
			continue
		}
		for j := 0; j < fu.Len(); j++ {
			op := fu.At(j)
			if op.ID == id {
				continue
			}
			f.ctr.AddFilter(1)
			if cl.Common.Dominates(op, o) {
				fu.Remove(id)
				for _, m := range cl.Members {
					if f.userFronts[m].Remove(id) {
						f.targets.remove(id, m)
					}
				}
				break
			}
		}
	}
}

// RemoveObject deletes o from the filter and member frontiers of every
// cluster and mends what it was shielding: first the filter frontier
// from the alive candidates o dominated under ≻_U, then — only for
// members whose own frontier held o — the member frontiers from the
// mended filter frontier. A member whose P_c did not hold o cannot gain:
// anything o shielded for that member is still shielded by o's own
// ≻_c-dominator, which survives in the filter frontier.
func (f *FilterThenVerify) RemoveObject(o object.Object, alive []object.Object) {
	for li := range f.clusters {
		cl := &f.clusters[li]
		if len(cl.Members) == 0 {
			continue
		}
		var holders []int
		for _, c := range cl.Members {
			if f.userFronts[c].Remove(o.ID) {
				f.targets.remove(o.ID, c)
				holders = append(holders, c)
			}
		}
		fu := f.clusterFronts[li]
		if !fu.Remove(o.ID) {
			continue
		}
		var cands []object.Object
		for _, x := range alive {
			if fu.Contains(x.ID) {
				continue
			}
			f.ctr.AddFilter(1)
			if cl.Common.Dominates(o, x) {
				cands = append(cands, x)
			}
		}
		MendFrontier(fu, cands, cl.Common, f.ctr.AddFilter)
		for _, c := range holders {
			f.mendMemberAfterRemoval(li, c, o)
		}
	}
	f.targets.drop(o.ID)
}

// mendMemberAfterRemoval promotes filter-frontier objects into P_c after
// o left it: only objects o dominated under ≻_c can have lost their last
// shield (covers freshly promoted filter objects too, since o ≻_U x
// implies o ≻_c x).
func (f *FilterThenVerify) mendMemberAfterRemoval(li, c int, o object.Object) {
	fu := f.clusterFronts[li]
	u := f.users[c]
	fc := f.userFronts[c]
	for _, x := range fu.Objects() {
		if fc.Contains(x.ID) {
			continue
		}
		f.ctr.AddVerify(1)
		if !u.Dominates(o, x) {
			continue
		}
		dominated := false
		for j := 0; j < fu.Len() && !dominated; j++ {
			op := fu.At(j)
			if op.ID == x.ID {
				continue
			}
			f.ctr.AddVerify(1)
			dominated = u.Dominates(op, x)
		}
		if !dominated {
			fc.Add(x)
			f.targets.add(x.ID, c)
		}
	}
}
