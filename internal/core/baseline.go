package core

import (
	"repro/internal/object"
	"repro/internal/pref"
	"repro/internal/stats"
)

// Baseline is Alg. 1: upon each arrival it updates every user's Pareto
// frontier independently by scanning that user's current frontier. It is
// the per-user BNL-style maintenance the paper compares against; its only
// virtue is simplicity — work is repeated for every user regardless of how
// similar their preferences are.
type Baseline struct {
	users   []*pref.Profile
	members []int // user indices this instance maintains (nil = all)
	fronts  []*Frontier
	targets *targetTracker
	ctr     *stats.Counters
	scratch ResultScratch
}

// NewBaseline creates a Baseline monitor for the given users. ctr may be
// nil to skip accounting.
func NewBaseline(users []*pref.Profile, ctr *stats.Counters) *Baseline {
	return newBaselineShard(users, nil, ctr)
}

// NewBaselineFor creates a Baseline maintaining only the given member
// user indices (ascending); recovery of an evolved community uses it to
// leave removed users' slots blank.
func NewBaselineFor(users []*pref.Profile, members []int, ctr *stats.Counters) *Baseline {
	return newBaselineShard(users, members, ctr)
}

// newBaselineShard creates a Baseline restricted to the given member
// user indices; ParallelBaseline builds one per worker over disjoint
// member sets. members == nil means every user. Frontiers exist only
// for maintained users — the harness routes every per-user call to the
// owning shard, so non-member slots are never dereferenced.
func newBaselineShard(users []*pref.Profile, members []int, ctr *stats.Counters) *Baseline {
	b := &Baseline{
		users:   users,
		members: members,
		fronts:  make([]*Frontier, len(users)),
		targets: newTargetTracker(),
		ctr:     ctr,
	}
	if members == nil {
		for c := range users {
			b.fronts[c] = NewFrontier()
		}
	} else {
		for _, c := range members {
			b.fronts[c] = NewFrontier()
		}
	}
	return b
}

// each calls fn for every user this instance maintains. Removed users
// leave a nil frontier slot behind and are skipped.
func (b *Baseline) each(fn func(c int)) {
	if b.members == nil {
		for c := range b.users {
			if b.fronts[c] != nil {
				fn(c)
			}
		}
		return
	}
	for _, c := range b.members {
		fn(c)
	}
}

// Process implements Alg. 1: for every user, run updateParetoFrontier and
// collect the target users C_o.
func (b *Baseline) Process(o object.Object) []int {
	b.ctr.AddProcessed()
	co := b.scratch.Start()
	b.each(func(c int) {
		if b.updateUser(c, o) {
			co = append(co, c)
		}
	})
	b.ctr.AddDelivered(len(co))
	return b.scratch.Finish(co)
}

// EnableScratch switches Process to a reused result slice; only the
// sharded harness (which copies results out) enables it.
func (b *Baseline) EnableScratch() { b.scratch.Enable() }

// updateUser is Procedure updateParetoFrontier(c, o) of Alg. 1. It returns
// whether o is Pareto-optimal for c. Every pairwise comparison is counted
// as a verify comparison (Baseline has no filter tier).
func (b *Baseline) updateUser(c int, o object.Object) bool {
	u := b.users[c]
	f := b.fronts[c]
	isPareto := true
scan:
	for i := 0; i < f.Len(); {
		op := f.At(i)
		b.ctr.AddVerify(1)
		switch u.Compare(o, op) {
		case pref.Left: // o ≻ o': discard o', keep scanning this slot
			f.Remove(op.ID)
			b.targets.remove(op.ID, c)
		case pref.Right: // o' ≻ o: o disqualified
			isPareto = false
			break scan
		case pref.Identical: // o' = o: o is Pareto-optimal, stop scanning
			break scan
		default:
			i++
		}
	}
	if isPareto {
		f.Add(o)
		b.targets.add(o.ID, c)
	}
	return isPareto
}

// SetClusterTotal is a no-op: Baseline has no cluster tier.
func (b *Baseline) SetClusterTotal(int) {}

// SetCommonFn is a no-op: Baseline has no cluster relations.
func (b *Baseline) SetCommonFn(CommonFn) {}

// UserFrontier returns P_c as object ids.
func (b *Baseline) UserFrontier(c int) []int { return b.fronts[c].IDs() }

// FrontierObjects returns P_c as objects (scan order).
func (b *Baseline) FrontierObjects(c int) []object.Object { return b.fronts[c].Objects() }

// Targets returns the current C_o of a previously processed object: the
// users for whom it is still Pareto-optimal.
func (b *Baseline) Targets(objID int) []int { return b.targets.users(objID) }
