package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/pref"
	"repro/internal/stats"
)

func TestParallelMatchesSequentialPaperExample(t *testing.T) {
	l := fixtures.NewLaptops()
	users := []*pref.Profile{l.C1, l.C2}
	clusters := []core.Cluster{
		{Members: []int{0}, Common: l.C1.Clone()},
		{Members: []int{1}, Common: l.C2.Clone()},
	}
	seqCtr, parCtr := &stats.Counters{}, &stats.Counters{}
	seq := core.NewFilterThenVerify(users, clusters, seqCtr)
	par := core.NewParallelFilterThenVerify(users, clusters, 2, parCtr)
	if par.Shards() != 2 {
		t.Fatalf("Shards = %d", par.Shards())
	}
	for _, o := range l.Objects {
		cs := seq.Process(o)
		cp := par.Process(o)
		if !reflect.DeepEqual(cs, cp) {
			t.Fatalf("o%d: sequential %v vs parallel %v", o.ID+1, cs, cp)
		}
	}
	for c := range users {
		if !reflect.DeepEqual(sorted(seq.UserFrontier(c)), sorted(par.UserFrontier(c))) {
			t.Errorf("user %d frontier mismatch", c)
		}
	}
	// The sharded harness accumulates comparisons in per-shard counters;
	// Totals folds them with the public one.
	if seqCtr.Comparisons != par.Totals().Comparisons {
		t.Errorf("comparison accounting: seq=%d par=%d", seqCtr.Comparisons, par.Totals().Comparisons)
	}
	if parCtr.Processed != uint64(len(l.Objects)) {
		t.Errorf("Processed = %d", parCtr.Processed)
	}
	// Targets merge across shards.
	if got := par.Targets(1); !reflect.DeepEqual(got, seq.Targets(1)) {
		t.Errorf("Targets = %v, want %v", got, seq.Targets(1))
	}
}

func TestParallelWorkerClamping(t *testing.T) {
	l := fixtures.NewLaptops()
	users := []*pref.Profile{l.C1, l.C2}
	clusters := []core.Cluster{{Members: []int{0, 1}, Common: l.U}}
	// More workers than clusters: clamps to cluster count.
	par := core.NewParallelFilterThenVerify(users, clusters, 16, nil)
	if par.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", par.Shards())
	}
	// workers <= 0 resolves to GOMAXPROCS then clamps.
	par0 := core.NewParallelFilterThenVerify(users, clusters, 0, nil)
	if par0.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", par0.Shards())
	}
}

func TestParallelValidatesPartition(t *testing.T) {
	l := fixtures.NewLaptops()
	defer func() {
		if recover() == nil {
			t.Fatal("bad partition should panic")
		}
	}()
	core.NewParallelFilterThenVerify([]*pref.Profile{l.C1, l.C2},
		[]core.Cluster{{Members: []int{0}, Common: l.U}}, 2, nil)
}

// Randomized equivalence across worker counts, cluster shapes, and
// object streams.
func TestQuickParallelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users, objs := randomWorld(r, 6, 2, 5, 40, 5)
		clusters := []core.Cluster{
			{Members: []int{0, 1}, Common: pref.Common([]*pref.Profile{users[0], users[1]})},
			{Members: []int{2}, Common: users[2].Clone()},
			{Members: []int{3, 4, 5}, Common: pref.Common([]*pref.Profile{users[3], users[4], users[5]})},
		}
		workers := 1 + r.Intn(4)
		seq := core.NewFilterThenVerify(users, clusters, nil)
		par := core.NewParallelFilterThenVerify(users, clusters, workers, nil)
		for _, o := range objs {
			if !reflect.DeepEqual(seq.Process(o), par.Process(o)) {
				return false
			}
		}
		for c := range users {
			if !reflect.DeepEqual(sorted(seq.UserFrontier(c)), sorted(par.UserFrontier(c))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
