package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pref"
	"repro/internal/stats"
)

// BenchmarkBaselineProcess measures Alg. 1's per-object cost.
func BenchmarkBaselineProcess(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	users, objs := randomWorld(r, 32, 3, 8, 4096, 14)
	eng := core.NewBaseline(users, &stats.Counters{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(objs[i%len(objs)])
	}
}

// BenchmarkFilterThenVerifyProcess measures Alg. 2's per-object cost on
// the same workload (4 clusters of 8 users).
func BenchmarkFilterThenVerifyProcess(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	users, objs := randomWorld(r, 32, 3, 8, 4096, 14)
	var clusters []core.Cluster
	for g := 0; g < 4; g++ {
		var members []int
		var profs []*pref.Profile
		for u := g * 8; u < (g+1)*8; u++ {
			members = append(members, u)
			profs = append(profs, users[u])
		}
		clusters = append(clusters, core.Cluster{Members: members, Common: pref.Common(profs)})
	}
	eng := core.NewFilterThenVerify(users, clusters, &stats.Counters{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(objs[i%len(objs)])
	}
}

// BenchmarkParallelProcess measures the goroutine fan-out variant.
func BenchmarkParallelProcess(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	users, objs := randomWorld(r, 32, 3, 8, 4096, 14)
	var clusters []core.Cluster
	for g := 0; g < 4; g++ {
		var members []int
		var profs []*pref.Profile
		for u := g * 8; u < (g+1)*8; u++ {
			members = append(members, u)
			profs = append(profs, users[u])
		}
		clusters = append(clusters, core.Cluster{Members: members, Common: pref.Common(profs)})
	}
	eng := core.NewParallelFilterThenVerify(users, clusters, 4, &stats.Counters{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(objs[i%len(objs)])
	}
}
