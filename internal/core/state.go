package core

import (
	"fmt"

	"repro/internal/object"
)

// EngineState is the serializable state of any engine, keyed by the
// shardable units — users and clusters — never by worker shards, so a
// state captured from a sequential engine restores into a sharded one
// (and vice versa, or under a different worker count). Frontier and
// buffer slices preserve the engine's scan/arrival order: restoring in
// order reproduces not only the frontiers but the exact comparison
// counts of every future arrival.
type EngineState struct {
	// UserFronts is P_c per user, in frontier scan order.
	UserFronts [][]object.Object
	// ClusterFronts is P_U per cluster (empty for Baseline engines).
	ClusterFronts [][]object.Object
	// UserBuffers is PB_c per user, in arrival order (sliding-window
	// Baseline only; nil otherwise).
	UserBuffers [][]object.Object
	// ClusterBuffers is PB_U per cluster, in arrival order
	// (sliding-window FilterThenVerify only; nil otherwise).
	ClusterBuffers [][]object.Object
	// RingSeen is the total number of objects pushed through the window
	// ring; Ring holds the min(RingSeen, W) youngest objects in arrival
	// order. HasRing distinguishes an append-only engine (false) from a
	// windowed engine that has seen nothing yet (true, empty Ring).
	HasRing  bool
	RingSeen int
	Ring     []object.Object
}

// NewEngineState allocates a state sized for the given shardable units.
// Buffer and ring fields stay zero until a sliding-window engine sets
// them during capture.
func NewEngineState(users, clusters int) *EngineState {
	return &EngineState{
		UserFronts:    make([][]object.Object, users),
		ClusterFronts: make([][]object.Object, clusters),
	}
}

// EnsureUserBuffers allocates UserBuffers on first use (sharded capture
// calls this once per shard; only the first call allocates).
func (st *EngineState) EnsureUserBuffers() {
	if st.UserBuffers == nil {
		st.UserBuffers = make([][]object.Object, len(st.UserFronts))
	}
}

// EnsureClusterBuffers allocates ClusterBuffers on first use.
func (st *EngineState) EnsureClusterBuffers() {
	if st.ClusterBuffers == nil {
		st.ClusterBuffers = make([][]object.Object, len(st.ClusterFronts))
	}
}

// SetRing records the window ring. Shards hold identical rings (every
// shard sees every object), so concurrent-equal writes are harmless.
func (st *EngineState) SetRing(seen int, tail []object.Object) {
	st.HasRing = true
	st.RingSeen = seen
	st.Ring = tail
}

// StateEngine is implemented by every engine (sequential and sharded,
// append-only and sliding-window): CaptureState fills the slots the
// engine owns; RestoreState — valid only on a freshly constructed,
// empty engine — rebuilds them. Both leave work counters untouched; the
// Monitor restores its counters separately.
type StateEngine interface {
	CaptureState(st *EngineState)
	RestoreState(st *EngineState) error
}

var (
	_ StateEngine = (*Baseline)(nil)
	_ StateEngine = (*FilterThenVerify)(nil)
	_ StateEngine = (*Sharded)(nil)
)

// copyObjects snapshots a frontier or buffer slice: engines mutate the
// backing arrays on the next arrival, so capture must not alias them.
func copyObjects(objs []object.Object) []object.Object {
	return append([]object.Object(nil), objs...)
}

// restoreFrontier refills an empty frontier in the captured scan order,
// mirroring membership into the target tracker when tr is non-nil.
func restoreFrontier(f *Frontier, objs []object.Object, tr *targetTracker, user int) {
	for _, o := range objs {
		f.Add(o)
		if tr != nil {
			tr.add(o.ID, user)
		}
	}
}

// checkStateSize validates that a decoded state matches the engine's
// user and cluster geometry before any slot is dereferenced.
func checkStateSize(st *EngineState, users, clusters int) error {
	if len(st.UserFronts) != users {
		return fmt.Errorf("core: state has %d user frontiers, engine has %d users", len(st.UserFronts), users)
	}
	if len(st.ClusterFronts) != clusters {
		return fmt.Errorf("core: state has %d cluster frontiers, engine has %d clusters", len(st.ClusterFronts), clusters)
	}
	return nil
}

// CaptureState fills the slots of the users this instance maintains.
func (b *Baseline) CaptureState(st *EngineState) {
	b.each(func(c int) { st.UserFronts[c] = copyObjects(b.fronts[c].Objects()) })
}

// RestoreState rebuilds the maintained users' frontiers and the target
// index from a captured state. The engine must be freshly constructed.
func (b *Baseline) RestoreState(st *EngineState) error {
	if err := checkStateSize(st, len(b.users), 0); err != nil {
		return err
	}
	b.each(func(c int) { restoreFrontier(b.fronts[c], st.UserFronts[c], b.targets, c) })
	return nil
}

// CaptureState fills the slots of the clusters this instance maintains
// (all of them for the sequential engine) and their members' frontiers.
func (f *FilterThenVerify) CaptureState(st *EngineState) {
	for li, cl := range f.clusters {
		st.ClusterFronts[f.globalIndex(li)] = copyObjects(f.clusterFronts[li].Objects())
		for _, c := range cl.Members {
			st.UserFronts[c] = copyObjects(f.userFronts[c].Objects())
		}
	}
}

// RestoreState rebuilds the maintained clusters' filter frontiers,
// their members' frontiers, and the target index.
func (f *FilterThenVerify) RestoreState(st *EngineState) error {
	if err := checkStateSize(st, len(f.users), f.clusterTotal()); err != nil {
		return err
	}
	for li, cl := range f.clusters {
		restoreFrontier(f.clusterFronts[li], st.ClusterFronts[f.globalIndex(li)], nil, 0)
		for _, c := range cl.Members {
			restoreFrontier(f.userFronts[c], st.UserFronts[c], f.targets, c)
		}
	}
	return nil
}

// globalIndex maps a local cluster index to its index in the monitor's
// full cluster list (identity for the sequential engine; the shard's
// round-robin assignment for sharded engines).
func (f *FilterThenVerify) globalIndex(li int) int {
	if f.globalIdx == nil {
		return li
	}
	return f.globalIdx[li]
}

// clusterTotal is the size of the full cluster list this engine's
// local clusters index into.
func (f *FilterThenVerify) clusterTotal() int {
	if f.globalIdx == nil {
		return len(f.clusters)
	}
	return f.total
}

// CaptureState fans the capture out to every shard; shards own disjoint
// slots, so sequential filling composes into the complete state.
func (s *Sharded) CaptureState(st *EngineState) {
	for _, sh := range s.shards {
		sh.CaptureState(st)
	}
}

// RestoreState hands the full state to every shard; each restores only
// the slots it owns. Counters are untouched — the Monitor restores its
// public totals separately and calls ResetShardCounters when recovery
// completes, so Stats().Shards reflects post-recovery work only.
func (s *Sharded) RestoreState(st *EngineState) error {
	for _, sh := range s.shards {
		if err := sh.RestoreState(st); err != nil {
			return err
		}
	}
	return nil
}
