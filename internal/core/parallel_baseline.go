package core

import (
	"repro/internal/pref"
	"repro/internal/stats"
)

// ParallelBaseline runs Alg. 1 with the users partitioned across worker
// goroutines. Baseline has no shared tier at all — every user's frontier
// is maintained independently — so sharding the user set is exact by
// construction and the engine exists mainly as the parallel control
// arm: FilterThenVerify shards whole clusters, Baseline shards raw
// users.
type ParallelBaseline struct {
	*Sharded
}

// NewParallelBaseline distributes the users round-robin over at most
// workers goroutines (0 means GOMAXPROCS).
func NewParallelBaseline(users []*pref.Profile, workers int, ctr *stats.Counters) *ParallelBaseline {
	return NewParallelBaselineFor(users, nil, workers, ctr)
}

// NewParallelBaselineFor is NewParallelBaseline over a user table with
// removed slots: active[c] == false leaves user c unowned by any shard's
// member list. active == nil means all users. Recovery of an evolved
// community uses it.
func NewParallelBaselineFor(users []*pref.Profile, active []bool, workers int, ctr *stats.Counters) *ParallelBaseline {
	return &ParallelBaseline{Sharded: ShardedByUserActive(len(users), active, workers, ctr,
		func(members []int, ctr *stats.Counters) ShardEngine {
			return newBaselineShard(users, members, ctr)
		})}
}
