package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/pref"
	"repro/internal/stats"
)

// buildFTV constructs a fresh exact filter-then-verify engine (sequential
// or sharded) over the laptops fixture.
func buildFTV(l *fixtures.Laptops, workers int, ctr *stats.Counters) interface {
	core.Monitor
	core.StateEngine
	Targets(objID int) []int
} {
	users := []*pref.Profile{l.C1.Clone(), l.C2.Clone()}
	clusters := []core.Cluster{
		{Members: []int{0}, Common: l.C1.Clone()},
		{Members: []int{1}, Common: l.C2.Clone()},
	}
	if workers > 1 {
		return core.NewParallelFilterThenVerify(users, clusters, workers, ctr)
	}
	return core.NewFilterThenVerify(users, clusters, ctr)
}

// totalsOf reads an engine's true counters: the sharded harness
// accumulates comparisons in per-shard counters that only fold in via
// Totals, while sequential engines write ctr directly.
func totalsOf(eng any, ctr *stats.Counters) stats.Counters {
	if t, ok := eng.(interface{ Totals() stats.Counters }); ok {
		return t.Totals()
	}
	return ctr.Snapshot()
}

// TestStateRoundTripFTV processes a stream prefix, captures state,
// restores it into fresh engines under every worker layout, and checks
// the continuation is indistinguishable from the uninterrupted engine —
// frontiers, targets, and even comparison counts.
func TestStateRoundTripFTV(t *testing.T) {
	l := fixtures.NewLaptops()
	half := len(l.Objects) / 2
	for _, srcWorkers := range []int{1, 2} {
		for _, dstWorkers := range []int{1, 2} {
			ctr := &stats.Counters{}
			orig := buildFTV(l, srcWorkers, ctr)
			for _, o := range l.Objects[:half] {
				orig.Process(o)
			}
			st := core.NewEngineState(2, 2)
			orig.CaptureState(st)
			atCapture := totalsOf(orig, ctr)

			restCtr := &stats.Counters{}
			restored := buildFTV(l, dstWorkers, restCtr)
			if err := restored.RestoreState(st); err != nil {
				t.Fatalf("src=%d dst=%d: RestoreState: %v", srcWorkers, dstWorkers, err)
			}
			for _, o := range l.Objects[half:] {
				co, cr := orig.Process(o), restored.Process(o)
				if !reflect.DeepEqual(co, cr) {
					t.Fatalf("src=%d dst=%d: o%d deliveries %v vs %v", srcWorkers, dstWorkers, o.ID+1, co, cr)
				}
			}
			for c := 0; c < 2; c++ {
				if !reflect.DeepEqual(sorted(orig.UserFrontier(c)), sorted(restored.UserFrontier(c))) {
					t.Errorf("src=%d dst=%d: user %d frontier mismatch", srcWorkers, dstWorkers, c)
				}
			}
			for id := range l.Objects {
				if !reflect.DeepEqual(orig.Targets(id), restored.Targets(id)) {
					t.Errorf("src=%d dst=%d: targets of o%d mismatch", srcWorkers, dstWorkers, id+1)
				}
			}
			tail := totalsOf(orig, ctr)
			if got, want := totalsOf(restored, restCtr).Comparisons, tail.Comparisons-atCapture.Comparisons; got != want {
				t.Errorf("src=%d dst=%d: continuation comparisons %d, uninterrupted tail did %d", srcWorkers, dstWorkers, got, want)
			}
		}
	}
}

// TestStateRoundTripBaseline does the same for the per-user engine.
func TestStateRoundTripBaseline(t *testing.T) {
	l := fixtures.NewLaptops()
	users := []*pref.Profile{l.C1.Clone(), l.C2.Clone()}
	half := len(l.Objects) / 2
	orig := core.NewBaseline(users, nil)
	for _, o := range l.Objects[:half] {
		orig.Process(o)
	}
	st := core.NewEngineState(2, 0)
	orig.CaptureState(st)

	restored := core.NewParallelBaseline([]*pref.Profile{l.C1.Clone(), l.C2.Clone()}, 2, nil)
	if err := restored.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	for _, o := range l.Objects[half:] {
		if co, cr := orig.Process(o), restored.Process(o); !reflect.DeepEqual(co, cr) {
			t.Fatalf("o%d deliveries %v vs %v", o.ID+1, co, cr)
		}
	}
	for c := 0; c < 2; c++ {
		if !reflect.DeepEqual(sorted(orig.UserFrontier(c)), sorted(restored.UserFrontier(c))) {
			t.Errorf("user %d frontier mismatch", c)
		}
	}
}

// TestStateRestoreRejectsWrongGeometry pins that restoring state from a
// differently sized deployment fails instead of corrupting silently.
func TestStateRestoreRejectsWrongGeometry(t *testing.T) {
	l := fixtures.NewLaptops()
	eng := core.NewBaseline([]*pref.Profile{l.C1.Clone(), l.C2.Clone()}, nil)
	if err := eng.RestoreState(core.NewEngineState(3, 0)); err == nil {
		t.Fatal("restoring 3-user state into 2-user engine succeeded")
	}
	ftv := buildFTV(l, 1, nil)
	if err := ftv.RestoreState(core.NewEngineState(2, 5)); err == nil {
		t.Fatal("restoring 5-cluster state into 2-cluster engine succeeded")
	}
}
