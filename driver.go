package paretomon

import (
	"errors"
	"fmt"
)

// Driver is the dissemination surface a cluster of cooperating processes
// exposes: everything a producer or consumer needs to ingest objects,
// evolve the community, and read frontiers — without caring whether one
// engine or a partitioned fleet answers.
//
// Two implementations ship with the repository:
//
//   - *Monitor: one in-process engine over the whole community.
//   - internal/partition.Router: a consistent-hash router fanning the
//     same calls across N primary processes, each owning a slice of the
//     users (see docs/PARTITIONING.md).
//
// Semantics are identical for every per-user read and for deliveries;
// the only contractual differences are ordering of aggregate listings
// (Users and Clusters are registration-ordered on a Monitor, merged
// and name-sorted on a Router) and Stats, whose counters a Router sums
// across partitions (Processed, the stream position, is the maximum:
// every partition sees the whole stream).
type Driver interface {
	// Ingestion. Deliveries carry the users for whom the object is
	// Pareto-optimal at arrival, across the whole community.
	Add(name string, values ...string) (Delivery, error)
	AddBatch(objs []Object) ([]Delivery, error)

	// v3 lifecycle: evolve the community and the object set.
	AddUser(name string, prefs []Preference) error
	RemoveUser(name string) error
	AddPreference(user, attr, better, worse string) error
	RetractPreference(user, attr, better, worse string) error
	RemoveObject(name string) error

	// Reads.
	Frontier(user string) ([]string, error)
	TargetsOf(object string) ([]string, error)
	Users() []string
	Clusters() [][]string
	Stats() Stats

	Close() error
}

// Monitor is the single-process Driver.
var _ Driver = (*Monitor)(nil)

// Subset derives a new community holding exactly the users keep admits,
// with their full preference profiles deep-copied onto a fresh schema.
// The receiver is not modified. A partitioned deployment uses it to give
// each partition its owned slice of one logical community (see
// internal/partition.Plan and cmd/paretomon -partition); the subset can
// be empty, which NewMonitor will reject with ErrEmptyCommunity.
func (c *Community) Subset(keep func(name string) bool) *Community {
	s := c.schema.clone()
	nc := NewCommunity(s)
	for _, u := range c.users {
		if !keep(u.name) {
			continue
		}
		nu := &User{name: u.name, community: nc, profile: u.profile.Rehome(s.doms)}
		nc.users = append(nc.users, nu)
		nc.byName[u.name] = nu
	}
	return nc
}

// Ready reports whether the monitor is able to serve: nil when it is,
// an error describing why not otherwise. It is the substance behind
// GET /readyz — a partition router probes it before (re)sending work —
// and deliberately stricter than liveness:
//
//   - a closed monitor is not ready (ErrMonitorClosed);
//   - a durable monitor whose store is poisoned (a failed WAL append —
//     memory and log may disagree) is not ready until restarted;
//   - a follower is ready only while its changefeed is connected and
//     the apply loop has not stopped on a fatal error, so a load
//     balancer never routes reads to a replica that is silently
//     diverging.
func (m *Monitor) Ready() error {
	if m.subs.isClosed() {
		return ErrMonitorClosed
	}
	m.mu.RLock()
	serr := m.storeErr
	m.mu.RUnlock()
	if serr != nil {
		if errors.Is(serr, ErrMonitorClosed) {
			return serr
		}
		return fmt.Errorf("%w: store unusable: %w", ErrStore, serr)
	}
	if f := m.follower; f != nil {
		if err, _ := f.err.Load().(error); err != nil {
			return fmt.Errorf("paretomon: replication stopped: %w", err)
		}
		if !f.connected.Load() {
			return fmt.Errorf("paretomon: follower changefeed disconnected from %s", f.primary)
		}
	}
	return nil
}
