package paretomon

import (
	"sync"
	"sync/atomic"
)

// defaultSubscriptionBuffer is the per-subscriber channel capacity when
// WithSubscriptionBuffer is not given.
const defaultSubscriptionBuffer = 64

// CancelFunc tears down a subscription: the subscriber is unregistered
// and its channel closed. Safe to call more than once.
type CancelFunc func()

// FrontierDelta is one observed change to a subscribed user's Pareto
// frontier — the v3 subscription payload, which makes removals
// observable (the v2 payload only reported entering objects).
type FrontierDelta struct {
	// Object names the triggering arrival for ingestion events (Add /
	// AddBatch); lifecycle events (RemoveObject, RetractPreference,
	// AddPreference) leave it empty.
	Object string
	// Entered lists, sorted, the object names that joined the user's
	// frontier: the arriving object, or objects promoted by a removal
	// or retraction mend.
	Entered []string
	// Left lists, sorted, the object names that left the frontier: a
	// removed object, or objects evicted by an AddPreference repair.
	// Ingestion events do not track evictions (nor window expiry);
	// consumers needing the full picture resynchronize via Frontier.
	Left []string
}

// subscriber is one push-delivery consumer for one user: a legacy
// Delivery channel (Subscribe) or a FrontierDelta channel
// (SubscribeDeltas), never both.
type subscriber struct {
	ch     chan Delivery
	dch    chan FrontierDelta
	closed bool // guarded by subscriptions.mu
}

func (s *subscriber) close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.ch != nil {
		close(s.ch)
	}
	if s.dch != nil {
		close(s.dch)
	}
}

// subscriptions is the Monitor's push-delivery fan-out. It has its own
// mutex, acquired after Monitor.mu when publishing, so subscription
// churn never blocks readers and never deadlocks against ingestion.
type subscriptions struct {
	mu      sync.Mutex
	byUser  map[int][]*subscriber
	buffer  int
	closed  bool
	dropped atomic.Uint64
}

func (s *subscriptions) init(buffer int) {
	s.byUser = make(map[int][]*subscriber)
	s.buffer = buffer
}

// add registers a subscriber for the user index.
func (s *subscriptions) add(user int, sub *subscriber) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrMonitorClosed
	}
	s.byUser[user] = append(s.byUser[user], sub)
	return nil
}

// remove unregisters and closes a subscriber. Idempotent.
func (s *subscriptions) remove(user int, sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub.closed {
		return
	}
	sub.close()
	list := s.byUser[user]
	for i, candidate := range list {
		if candidate == sub {
			s.byUser[user] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.byUser[user]) == 0 {
		delete(s.byUser, user)
	}
}

// send delivers on a legacy channel without ever blocking ingestion:
// when the buffer is full, the oldest pending delivery is discarded to
// make room for the newest, and the loss is counted.
func (s *subscriptions) send(sub *subscriber, d Delivery) {
	for {
		select {
		case sub.ch <- d:
			return
		default:
			select {
			case <-sub.ch:
				s.dropped.Add(1)
			default:
			}
		}
	}
}

// sendDelta is send for delta channels.
func (s *subscriptions) sendDelta(sub *subscriber, d FrontierDelta) {
	for {
		select {
		case sub.dch <- d:
			return
		default:
			select {
			case <-sub.dch:
				s.dropped.Add(1)
			default:
			}
		}
	}
}

// publish fans an ingestion delivery out to every subscriber of every
// target user: legacy subscribers receive the Delivery, delta
// subscribers an enter-only FrontierDelta for the arriving object.
func (s *subscriptions) publish(d Delivery, users []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.byUser) == 0 {
		return
	}
	var delta *FrontierDelta
	for _, u := range users {
		for _, sub := range s.byUser[u] {
			if sub.ch != nil {
				s.send(sub, d)
				continue
			}
			if delta == nil {
				delta = &FrontierDelta{Object: d.Object, Entered: []string{d.Object}}
			}
			s.sendDelta(sub, *delta)
		}
	}
}

// publishDelta fans a lifecycle frontier change out to one user's delta
// subscribers (legacy subscribers keep the v2 enter-only contract and
// see nothing).
func (s *subscriptions) publishDelta(user int, delta FrontierDelta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for _, sub := range s.byUser[user] {
		if sub.dch != nil {
			s.sendDelta(sub, delta)
		}
	}
}

// closeUser closes and unregisters every subscriber of one user
// (RemoveUser teardown): consumers ranging over the channel observe the
// close and stop; a later Subscribe for the name fails with
// ErrUnknownUser until the name is re-added.
func (s *subscriptions) closeUser(user int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.byUser[user] {
		sub.close()
	}
	delete(s.byUser, user)
}

// closeAll closes every subscriber and rejects future Subscribe calls.
func (s *subscriptions) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, list := range s.byUser {
		for _, sub := range list {
			sub.close()
		}
	}
	s.byUser = map[int][]*subscriber{}
}

func (s *subscriptions) droppedCount() uint64 { return s.dropped.Load() }

// isClosed reports whether closeAll has run — the Monitor-level closed
// flag readiness probes check.
func (s *subscriptions) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Subscribe registers for push delivery: every future object that is
// Pareto-optimal for the named user at arrival time is sent on the
// returned channel as it is ingested, in ingestion order. Multiple
// subscriptions per user are independent; each gets every delivery.
//
// The channel is buffered (WithSubscriptionBuffer, default 64). A
// consumer that falls behind loses its oldest pending deliveries rather
// than stalling ingestion; Stats.DroppedDeliveries counts the losses —
// consumers needing a complete picture should resynchronize via Frontier.
//
// The returned CancelFunc unregisters the subscription and closes the
// channel; after Monitor.Close — or a RemoveUser of this user — the
// channel is closed too, so consumers should simply range over it.
//
// Deprecated: Subscribe carries the v2 enter-only payload and never
// reports objects leaving a frontier. New code should use
// SubscribeDeltas, whose FrontierDelta events also observe RemoveObject,
// RetractPreference and AddPreference changes.
//
// subscriptions are ephemeral and deliberately not persisted.
//
//paretomon:nowal — registers an in-process fan-out channel;
func (m *Monitor) Subscribe(user string) (<-chan Delivery, CancelFunc, error) {
	// Hold the read lock across lookup AND registration: RemoveUser
	// closes a user's subscribers under the write lock, so registering
	// after an unlocked lookup could attach a channel to a user removed
	// in between — a channel nothing would ever close.
	m.mu.RLock()
	defer m.mu.RUnlock()
	idx, err := m.user(user)
	if err != nil {
		return nil, nil, err
	}
	sub := &subscriber{ch: make(chan Delivery, m.subs.buffer)}
	if err := m.subs.add(idx, sub); err != nil {
		return nil, nil, err
	}
	cancel := func() { m.subs.remove(idx, sub) }
	return sub.ch, cancel, nil
}

// SubscribeDeltas registers for push delivery of the named user's
// frontier changes: one FrontierDelta per observed mutation — an
// arriving object entering the frontier, objects promoted by
// RemoveObject or RetractPreference mends, objects evicted by an
// AddPreference repair. Buffering, loss accounting and teardown follow
// the Subscribe contract; the channel closes on cancel, Monitor.Close,
// and RemoveUser of this user.
//
//paretomon:nowal — same ephemeral registration as Subscribe.
func (m *Monitor) SubscribeDeltas(user string) (<-chan FrontierDelta, CancelFunc, error) {
	// See Subscribe for why the read lock spans lookup + registration.
	m.mu.RLock()
	defer m.mu.RUnlock()
	idx, err := m.user(user)
	if err != nil {
		return nil, nil, err
	}
	sub := &subscriber{dch: make(chan FrontierDelta, m.subs.buffer)}
	if err := m.subs.add(idx, sub); err != nil {
		return nil, nil, err
	}
	cancel := func() { m.subs.remove(idx, sub) }
	return sub.dch, cancel, nil
}

// Close shuts down delivery fan-out: any shard-worker goroutines of a
// parallel engine are stopped, every subscription channel is closed and
// further Subscribe calls return ErrMonitorClosed. Reads
// (Frontier, Stats, Clusters, TargetsOf) keep working. On a follower
// (OpenFollower) the changefeed tail goroutine is stopped first, so no
// replicated mutation applies after Close returns. On a monitor
// built with Open — which owns its file store — the store is closed
// too, after which mutations fail with an error wrapping
// ErrMonitorClosed; with a caller-provided WithStore the caller owns the
// store's lifecycle and ingestion keeps working. Close implements
// io.Closer for composition with server lifecycles.
//
// follower; there is no operation to log.
//
//paretomon:nowal — shutdown tears down subscriptions and the
func (m *Monitor) Close() error {
	if m.follower != nil {
		m.follower.cancel()
		<-m.follower.done
	}
	// Sharded engines may have dispatch goroutines parked on their rings;
	// stop them under the write lock so no Process is in flight.
	m.mu.Lock()
	if eng, ok := m.eng.(interface{ Close() }); ok {
		eng.Close()
	}
	m.mu.Unlock()
	m.subs.closeAll()
	if m.ownsStore && m.store != nil {
		m.mu.Lock()
		if m.storeErr == nil {
			m.storeErr = ErrMonitorClosed
		}
		m.mu.Unlock()
		return m.store.Close()
	}
	return nil
}
