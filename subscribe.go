package paretomon

import (
	"sync"
	"sync/atomic"
)

// defaultSubscriptionBuffer is the per-subscriber channel capacity when
// WithSubscriptionBuffer is not given.
const defaultSubscriptionBuffer = 64

// CancelFunc tears down a subscription: the subscriber is unregistered
// and its channel closed. Safe to call more than once.
type CancelFunc func()

// subscriber is one push-delivery consumer for one user.
type subscriber struct {
	ch     chan Delivery
	closed bool // guarded by subscriptions.mu
}

// subscriptions is the Monitor's push-delivery fan-out. It has its own
// mutex, acquired after Monitor.mu when publishing, so subscription
// churn never blocks readers and never deadlocks against ingestion.
type subscriptions struct {
	mu      sync.Mutex
	byUser  map[int][]*subscriber
	buffer  int
	closed  bool
	dropped atomic.Uint64
}

func (s *subscriptions) init(buffer int) {
	s.byUser = make(map[int][]*subscriber)
	s.buffer = buffer
}

// add registers a subscriber for the user index.
func (s *subscriptions) add(user int) (*subscriber, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrMonitorClosed
	}
	sub := &subscriber{ch: make(chan Delivery, s.buffer)}
	s.byUser[user] = append(s.byUser[user], sub)
	return sub, nil
}

// remove unregisters and closes a subscriber. Idempotent.
func (s *subscriptions) remove(user int, sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.ch)
	list := s.byUser[user]
	for i, candidate := range list {
		if candidate == sub {
			s.byUser[user] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.byUser[user]) == 0 {
		delete(s.byUser, user)
	}
}

// publish fans a delivery out to every subscriber of every target user.
// Sends never block ingestion: when a subscriber's buffer is full, the
// oldest pending delivery is discarded to make room for the newest, and
// the loss is counted.
func (s *subscriptions) publish(d Delivery, users []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.byUser) == 0 {
		return
	}
	for _, u := range users {
		for _, sub := range s.byUser[u] {
			for {
				select {
				case sub.ch <- d:
				default:
					select {
					case <-sub.ch:
						s.dropped.Add(1)
					default:
					}
					continue
				}
				break
			}
		}
	}
}

// closeAll closes every subscriber and rejects future Subscribe calls.
func (s *subscriptions) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, list := range s.byUser {
		for _, sub := range list {
			sub.closed = true
			close(sub.ch)
		}
	}
	s.byUser = map[int][]*subscriber{}
}

func (s *subscriptions) droppedCount() uint64 { return s.dropped.Load() }

// Subscribe registers for push delivery: every future object that is
// Pareto-optimal for the named user at arrival time is sent on the
// returned channel as it is ingested, in ingestion order. Multiple
// subscriptions per user are independent; each gets every delivery.
//
// The channel is buffered (WithSubscriptionBuffer, default 64). A
// consumer that falls behind loses its oldest pending deliveries rather
// than stalling ingestion; Stats.DroppedDeliveries counts the losses —
// consumers needing a complete picture should resynchronize via Frontier.
//
// The returned CancelFunc unregisters the subscription and closes the
// channel; after Monitor.Close the channel is closed too, so consumers
// should simply range over it.
func (m *Monitor) Subscribe(user string) (<-chan Delivery, CancelFunc, error) {
	idx, err := m.user(user)
	if err != nil {
		return nil, nil, err
	}
	sub, err := m.subs.add(idx)
	if err != nil {
		return nil, nil, err
	}
	cancel := func() { m.subs.remove(idx, sub) }
	return sub.ch, cancel, nil
}

// Close shuts down delivery fan-out: every subscription channel is
// closed and further Subscribe calls return ErrMonitorClosed. Reads
// (Frontier, Stats, Clusters, TargetsOf) keep working. On a monitor
// built with Open — which owns its file store — the store is closed
// too, after which Add, AddBatch and AddPreference fail with an error
// wrapping ErrMonitorClosed; with a caller-provided WithStore the
// caller owns the store's lifecycle and ingestion keeps working. Close
// implements io.Closer for composition with server lifecycles.
func (m *Monitor) Close() error {
	m.subs.closeAll()
	if m.ownsStore && m.store != nil {
		m.mu.Lock()
		if m.storeErr == nil {
			m.storeErr = ErrMonitorClosed
		}
		m.mu.Unlock()
		return m.store.Close()
	}
	return nil
}
