package paretomon_test

import (
	"errors"
	"testing"

	paretomon "repro"
)

// TestOptionValueValidation pins the ErrBadOption taxonomy: every With*
// option fed an out-of-range value must reject it from NewMonitor with
// an error wrapping both ErrBadOption and (for v2 compatibility)
// ErrInvalidConfig — silently-accepted negatives caused clamps and
// panics deep inside the engines before.
func TestOptionValueValidation(t *testing.T) {
	s := paretomon.NewSchema("a")
	com := paretomon.NewCommunity(s)
	if _, err := com.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  paretomon.Option
	}{
		{"WithWindow(-1)", paretomon.WithWindow(-1)},
		{"WithWorkers(-1)", paretomon.WithWorkers(-1)},
		{"WithSnapshotEvery(-1)", paretomon.WithSnapshotEvery(-1)},
		{"WithClusterCount(0)", paretomon.WithClusterCount(0)},
		{"WithClusterCount(-3)", paretomon.WithClusterCount(-3)},
		{"WithBranchCut(-0.5)", paretomon.WithBranchCut(-0.5)},
		{"WithSubscriptionBuffer(0)", paretomon.WithSubscriptionBuffer(0)},
		{"WithThetas(0, 0.5)", paretomon.WithThetas(0, 0.5)},
		{"WithThetas(10, 1.0)", paretomon.WithThetas(10, 1.0)},
		{"WithAlgorithm(99)", paretomon.WithAlgorithm(paretomon.Algorithm(99))},
		{"WithMeasure(99)", paretomon.WithMeasure(paretomon.Measure(99))},
		{"WithStore(nil)", paretomon.WithStore(nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := paretomon.NewMonitor(com, tc.opt)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !errors.Is(err, paretomon.ErrBadOption) {
				t.Errorf("%s: %v does not wrap ErrBadOption", tc.name, err)
			}
			if !errors.Is(err, paretomon.ErrInvalidConfig) {
				t.Errorf("%s: %v does not wrap ErrInvalidConfig", tc.name, err)
			}
		})
	}

	// In-range values still construct.
	if _, err := paretomon.NewMonitor(com,
		paretomon.WithWindow(0), paretomon.WithWorkers(0), paretomon.WithClusterCount(1)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}
