package paretomon_test

// Equivalence tests for the v3 lifecycle API across every engine shape:
//
//   - seq-vs-parallel: a randomized interleaved Add / AddPreference /
//     RetractPreference / AddUser / RemoveUser / RemoveObject workload
//     must produce identical outcomes, frontiers, targets and work
//     counters on the sequential and sharded engines (run under -race
//     this also exercises the fan-out paths);
//   - crash recovery: a durable monitor killed mid-workload and
//     recovered via the store must be indistinguishable — frontiers,
//     targets, counters — from an uninterrupted run;
//   - fresh-build equivalence: after arbitrary lifecycle churn, the
//     monitor's frontiers must equal those of a fresh monitor built
//     from the final community over the final alive objects.
//
// To keep every scripted operation valid on every monitor (so scripts
// replay identically), all preference edges are drawn consistent with a
// fixed global ranking per attribute: chains are increasing
// subsequences, so no insertion can form a cycle and every scripted
// retraction targets a tuple the model knows is asserted.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	paretomon "repro"
)

// lcAttrs is the fixed schema: per attribute, values in globally ranked
// order (edges always point down-rank).
var lcAttrs = []struct {
	name   string
	values []string
}{
	{"brand", []string{"Apple", "Lenovo", "Sony", "Toshiba", "Acer", "Asus"}},
	{"cpu", []string{"octa", "quad", "triple", "dual", "single"}},
	{"size", []string{"small", "medium", "large"}},
}

// lcOp is one scripted lifecycle mutation.
type lcOp struct {
	kind    string // "batch", "addpref", "retract", "adduser", "rmuser", "rmobj"
	batch   []paretomon.Object
	user    string
	pref    paretomon.Preference // addpref / retract
	prefs   []paretomon.Preference
	objName string
}

// lcScript generates a deterministic interleaved workload: the model
// tracks alive users (with their asserted tuples) and alive objects so
// every op is valid on any monitor that replayed the prefix.
type lcScript struct {
	rng      *rand.Rand
	ops      []lcOp
	users    map[string][]paretomon.Preference // alive user -> asserted tuples in order
	order    []string                          // alive users in (re-)registration order
	objs     []paretomon.Object                // added objects in arrival order
	alive    map[string]int                    // alive object name -> objs index
	nextObj  int
	nextUser int
}

func (s *lcScript) chain(user string) []paretomon.Preference {
	var prefs []paretomon.Preference
	for _, a := range lcAttrs {
		// A random increasing subsequence of the global ranking.
		var picked []string
		for _, v := range a.values {
			if s.rng.Intn(2) == 0 {
				picked = append(picked, v)
			}
		}
		for i := 0; i+1 < len(picked); i++ {
			prefs = append(prefs, paretomon.Preference{Attr: a.name, Better: picked[i], Worse: picked[i+1]})
		}
	}
	return prefs
}

func (s *lcScript) addAsserted(user string, p paretomon.Preference) bool {
	for _, q := range s.users[user] {
		if q == p {
			return false
		}
	}
	s.users[user] = append(s.users[user], p)
	return true
}

func (s *lcScript) randomObject() paretomon.Object {
	values := make([]string, len(lcAttrs))
	for d, a := range lcAttrs {
		values[d] = a.values[s.rng.Intn(len(a.values))]
	}
	s.nextObj++
	return paretomon.Object{Name: fmt.Sprintf("o%04d", s.nextObj), Values: values}
}

func (s *lcScript) emitBatch() {
	n := 1 + s.rng.Intn(4)
	batch := make([]paretomon.Object, n)
	for i := range batch {
		batch[i] = s.randomObject()
		s.alive[batch[i].Name] = len(s.objs)
		s.objs = append(s.objs, batch[i])
	}
	s.ops = append(s.ops, lcOp{kind: "batch", batch: batch})
}

func (s *lcScript) pickUser() string {
	return s.order[s.rng.Intn(len(s.order))]
}

// lcGenerate builds the community (base users u0..u<n-1>) and the op
// script.
func lcGenerate(t testing.TB, seed int64, baseUsers, steps int) (*paretomon.Community, *lcScript) {
	t.Helper()
	s := &lcScript{
		rng:   rand.New(rand.NewSource(seed)),
		users: map[string][]paretomon.Preference{},
		alive: map[string]int{},
	}
	names := make([]string, len(lcAttrs))
	for i, a := range lcAttrs {
		names[i] = a.name
	}
	com := paretomon.NewCommunity(paretomon.NewSchema(names...))
	for i := 0; i < baseUsers; i++ {
		name := fmt.Sprintf("u%02d", i)
		u, err := com.AddUser(name)
		if err != nil {
			t.Fatal(err)
		}
		prefs := s.chain(name)
		for _, p := range prefs {
			if err := u.Prefer(p.Attr, p.Better, p.Worse); err != nil {
				t.Fatal(err)
			}
			s.addAsserted(name, p)
		}
		s.order = append(s.order, name)
	}
	s.nextUser = baseUsers

	for i := 0; i < steps; i++ {
		switch roll := s.rng.Intn(100); {
		case roll < 45:
			s.emitBatch()
		case roll < 60: // AddPreference: a fresh down-rank edge
			user := s.pickUser()
			a := lcAttrs[s.rng.Intn(len(lcAttrs))]
			i1 := s.rng.Intn(len(a.values) - 1)
			i2 := i1 + 1 + s.rng.Intn(len(a.values)-i1-1)
			p := paretomon.Preference{Attr: a.name, Better: a.values[i1], Worse: a.values[i2]}
			s.addAsserted(user, p)
			s.ops = append(s.ops, lcOp{kind: "addpref", user: user, pref: p})
		case roll < 72: // Retract an asserted tuple, if any
			user := s.pickUser()
			asserted := s.users[user]
			if len(asserted) == 0 {
				s.emitBatch()
				continue
			}
			p := asserted[s.rng.Intn(len(asserted))]
			kept := s.users[user][:0:0]
			for _, q := range s.users[user] {
				if q != p {
					kept = append(kept, q)
				}
			}
			s.users[user] = kept
			s.ops = append(s.ops, lcOp{kind: "retract", user: user, pref: p})
		case roll < 82: // AddUser (sometimes re-using a removed name)
			s.nextUser++
			name := fmt.Sprintf("u%02d", s.nextUser)
			prefs := s.chain(name)
			s.users[name] = append([]paretomon.Preference(nil), prefs...)
			s.order = append(s.order, name)
			s.ops = append(s.ops, lcOp{kind: "adduser", user: name, prefs: prefs})
		case roll < 90: // RemoveUser (keep at least two alive)
			if len(s.order) <= 2 {
				s.emitBatch()
				continue
			}
			i := s.rng.Intn(len(s.order))
			name := s.order[i]
			s.order = append(s.order[:i], s.order[i+1:]...)
			delete(s.users, name)
			s.ops = append(s.ops, lcOp{kind: "rmuser", user: name})
		default: // RemoveObject
			if len(s.alive) == 0 {
				s.emitBatch()
				continue
			}
			// Deterministic pick despite map order: walk the arrival list
			// for the k-th alive object.
			k := s.rng.Intn(len(s.alive))
			var name string
			for _, o := range s.objs {
				if _, ok := s.alive[o.Name]; !ok {
					continue
				}
				if k == 0 {
					name = o.Name
					break
				}
				k--
			}
			delete(s.alive, name)
			s.ops = append(s.ops, lcOp{kind: "rmobj", objName: name})
		}
	}
	return com, s
}

// lcApply drives a monitor through ops [from, to); every op must
// succeed.
func lcApply(t testing.TB, m *paretomon.Monitor, ops []lcOp, from, to int) {
	t.Helper()
	for i, op := range ops[from:to] {
		var err error
		switch op.kind {
		case "batch":
			if len(op.batch) == 1 {
				_, err = m.Add(op.batch[0].Name, op.batch[0].Values...)
			} else {
				_, err = m.AddBatch(op.batch)
			}
		case "addpref":
			err = m.AddPreference(op.user, op.pref.Attr, op.pref.Better, op.pref.Worse)
		case "retract":
			err = m.RetractPreference(op.user, op.pref.Attr, op.pref.Better, op.pref.Worse)
		case "adduser":
			err = m.AddUser(op.user, op.prefs)
		case "rmuser":
			err = m.RemoveUser(op.user)
		case "rmobj":
			err = m.RemoveObject(op.objName)
		}
		if err != nil {
			t.Fatalf("op %d (%s %s%s): %v", from+i, op.kind, op.user, op.objName, err)
		}
	}
}

// lcCompare asserts two monitors are observably identical over the final
// alive community and objects; withStats additionally pins the work
// counters.
func lcCompare(t *testing.T, label string, want, got *paretomon.Monitor, s *lcScript, withStats bool) {
	t.Helper()
	for _, u := range s.order {
		fw, err1 := want.Frontier(u)
		fg, err2 := got.Frontier(u)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: Frontier(%s): %v / %v", label, u, err1, err2)
		}
		if !reflect.DeepEqual(fw, fg) {
			t.Errorf("%s: frontier of %s: %v, want %v", label, u, fg, fw)
		}
	}
	for name := range s.alive {
		tw, err1 := want.TargetsOf(name)
		tg, err2 := got.TargetsOf(name)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: TargetsOf(%s): %v / %v", label, name, err1, err2)
		}
		if !reflect.DeepEqual(tw, tg) {
			t.Errorf("%s: targets of %s: %v, want %v", label, name, tg, tw)
		}
	}
	if users := got.Users(); !reflect.DeepEqual(users, s.order) {
		t.Errorf("%s: Users() = %v, want %v", label, users, s.order)
	}
	if withStats {
		sw, sg := want.Stats(), got.Stats()
		if sw.Comparisons != sg.Comparisons || sw.FilterComparisons != sg.FilterComparisons ||
			sw.VerifyComparisons != sg.VerifyComparisons || sw.Delivered != sg.Delivered ||
			sw.Processed != sg.Processed {
			t.Errorf("%s: stats diverged: got %+v, want %+v", label, sg, sw)
		}
	}
}

// lcCases are the engine shapes under test; with workers 1 and 3 they
// cover all eight engines (sequential and sharded, append-only and
// windowed) plus the approximate variant.
var lcCases = []struct {
	name string
	opts []paretomon.Option
}{
	{"baseline", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmBaseline)}},
	{"ftv", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerify), paretomon.WithBranchCut(1.2)}},
	{"ftva", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerifyApprox), paretomon.WithBranchCut(1.2), paretomon.WithThetas(40, 0.3)}},
	{"baselineSW", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmBaseline), paretomon.WithWindow(17)}},
	{"ftvSW", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerify), paretomon.WithBranchCut(1.2), paretomon.WithWindow(17)}},
}

// TestLifecycleSeqVsParallel pins sharded-engine equivalence under
// interleaved lifecycle mutations: deliveries are not compared op by op
// (both monitors run the same script independently) but final frontiers,
// targets, community and exact work counters must match.
func TestLifecycleSeqVsParallel(t *testing.T) {
	for _, tc := range lcCases {
		t.Run(tc.name, func(t *testing.T) {
			com, s := lcGenerate(t, 31, 8, 90)
			seq, err := paretomon.NewMonitor(com, append(append([]paretomon.Option{}, tc.opts...), paretomon.WithWorkers(1))...)
			if err != nil {
				t.Fatal(err)
			}
			par, err := paretomon.NewMonitor(com, append(append([]paretomon.Option{}, tc.opts...), paretomon.WithWorkers(3))...)
			if err != nil {
				t.Fatal(err)
			}
			lcApply(t, seq, s.ops, 0, len(s.ops))
			lcApply(t, par, s.ops, 0, len(s.ops))
			lcCompare(t, tc.name, seq, par, s, true)
		})
	}
}

// TestLifecycleCrashRecovery is the tentpole's acceptance gate: a
// durable monitor performing interleaved lifecycle mutations, killed
// without any shutdown and recovered over the same store, must report
// frontiers, targets and stats identical to an uninterrupted run — for
// every engine shape, sharded or not, with and without snapshots.
func TestLifecycleCrashRecovery(t *testing.T) {
	for _, tc := range lcCases {
		for _, workers := range []int{1, 3} {
			for _, snapEvery := range []int{0, 7} {
				name := fmt.Sprintf("%s/workers=%d/snapEvery=%d", tc.name, workers, snapEvery)
				t.Run(name, func(t *testing.T) {
					com, s := lcGenerate(t, 47, 8, 80)
					half := len(s.ops) / 2
					opts := append(append([]paretomon.Option{}, tc.opts...), paretomon.WithWorkers(workers))

					ref, err := paretomon.NewMonitor(com, opts...)
					if err != nil {
						t.Fatal(err)
					}
					lcApply(t, ref, s.ops, 0, len(s.ops))

					store := paretomon.NewMemStore()
					durable := append(append([]paretomon.Option{}, opts...), paretomon.WithStore(store))
					if snapEvery > 0 {
						durable = append(durable, paretomon.WithSnapshotEvery(snapEvery))
					}
					m1, err := paretomon.NewMonitor(com, durable...)
					if err != nil {
						t.Fatal(err)
					}
					lcApply(t, m1, s.ops, 0, half)
					// No Close, no final snapshot: the kill -9 point.

					m2, err := paretomon.NewMonitor(com, durable...)
					if err != nil {
						t.Fatalf("recovery: %v", err)
					}
					lcApply(t, m2, s.ops, half, len(s.ops))
					lcCompare(t, name, ref, m2, s, true)
				})
			}
		}
	}
}

// TestLifecycleEqualsFreshBuild pins the semantic core of the lifecycle
// API: after arbitrary churn — users joining and leaving, preferences
// asserted and retracted, objects added and removed — the monitor's
// frontiers equal those of a fresh monitor built directly from the final
// community over the final alive objects. Windows are sized above the
// stream so windowed engines see the same alive set. (The approximate
// engine is excluded: its results legitimately depend on the clustering
// path, which incremental evolution and fresh agglomeration need not
// share.)
func TestLifecycleEqualsFreshBuild(t *testing.T) {
	cases := []struct {
		name string
		opts []paretomon.Option
	}{
		{"baseline", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmBaseline)}},
		{"ftv", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerify), paretomon.WithBranchCut(1.2)}},
		{"baselineSW", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmBaseline), paretomon.WithWindow(1000)}},
		{"ftvSW", []paretomon.Option{paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerify), paretomon.WithBranchCut(1.2), paretomon.WithWindow(1000)}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				com, s := lcGenerate(t, 59, 8, 90)
				opts := append(append([]paretomon.Option{}, tc.opts...), paretomon.WithWorkers(workers))
				evolved, err := paretomon.NewMonitor(com, opts...)
				if err != nil {
					t.Fatal(err)
				}
				lcApply(t, evolved, s.ops, 0, len(s.ops))

				// Fresh monitor from the final community: alive users with
				// their final asserted tuples, alive objects in arrival order.
				names := make([]string, len(lcAttrs))
				for i, a := range lcAttrs {
					names[i] = a.name
				}
				finalCom := paretomon.NewCommunity(paretomon.NewSchema(names...))
				for _, name := range s.order {
					u, err := finalCom.AddUser(name)
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range s.users[name] {
						if err := u.Prefer(p.Attr, p.Better, p.Worse); err != nil {
							t.Fatal(err)
						}
					}
				}
				fresh, err := paretomon.NewMonitor(finalCom, opts...)
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range s.objs {
					if _, ok := s.alive[o.Name]; !ok {
						continue
					}
					if _, err := fresh.Add(o.Name, o.Values...); err != nil {
						t.Fatal(err)
					}
				}
				// Frontiers and targets must agree; work counters need not —
				// the evolved monitor earned its state down a different path.
				lcCompare(t, tc.name, fresh, evolved, s, false)
			})
		}
	}
}
