package paretomon

import (
	"errors"
	"fmt"

	"repro/internal/storage"
)

// The package's error taxonomy. Every error returned by the public API
// wraps exactly one of these sentinels, so callers dispatch with
// errors.Is and never parse message strings:
//
//	if errors.Is(err, paretomon.ErrUnknownUser) { ... 404 ... }
//
// Messages still carry full context (user name, attribute, values) for
// logs; the sentinel carries the category.
var (
	// ErrInvalidConfig reports a rejected option or configuration value
	// (negative window, θ out of range, unknown algorithm, ...).
	ErrInvalidConfig = errors.New("paretomon: invalid configuration")

	// ErrBadOption reports a With* option called with an out-of-range
	// value (negative window, worker count, snapshot interval, cluster
	// count below one, ...). It wraps ErrInvalidConfig, so existing
	// errors.Is(err, ErrInvalidConfig) dispatch keeps matching.
	ErrBadOption = fmt.Errorf("%w: bad option value", ErrInvalidConfig)

	// ErrEmptyCommunity reports a NewMonitor call over a community with
	// no users.
	ErrEmptyCommunity = errors.New("paretomon: community has no users")

	// ErrEmptyName reports an empty user or object name.
	ErrEmptyName = errors.New("paretomon: empty name")

	// ErrUnknownUser reports a user name the community has never seen.
	ErrUnknownUser = errors.New("paretomon: unknown user")

	// ErrUnknownAttribute reports an attribute name outside the schema.
	ErrUnknownAttribute = errors.New("paretomon: unknown attribute")

	// ErrUnknownObject reports an object name the monitor has never
	// ingested — or one RemoveObject has deleted.
	ErrUnknownObject = errors.New("paretomon: unknown object")

	// ErrUnknownPreference reports a RetractPreference of a tuple the
	// user never asserted: unknown values, a never-added pair, or a pair
	// only implied transitively by other assertions (retract an
	// asserting edge instead).
	ErrUnknownPreference = errors.New("paretomon: preference was never asserted")

	// ErrDuplicateUser reports a second AddUser with an existing name.
	ErrDuplicateUser = errors.New("paretomon: duplicate user")

	// ErrDuplicateObject reports a second Add of an existing object name.
	ErrDuplicateObject = errors.New("paretomon: duplicate object")

	// ErrSchemaMismatch reports an object whose value count differs from
	// the schema's attribute count.
	ErrSchemaMismatch = errors.New("paretomon: value count does not match schema")

	// ErrCycle reports a preference that would violate the strict
	// partial order (a cycle or a reflexive tuple).
	ErrCycle = errors.New("paretomon: preference would violate strict partial order")

	// ErrMonitorClosed reports a Subscribe on a monitor whose Close has
	// been called.
	ErrMonitorClosed = errors.New("paretomon: monitor closed")

	// ErrUnsupported reports an operation the configured engine cannot
	// perform (e.g. online preference updates on an exotic engine), or a
	// persistence call — Snapshot, StorageStats — on a monitor built
	// without a store.
	ErrUnsupported = errors.New("paretomon: operation not supported by engine")

	// ErrCorrupt reports durable state that cannot be trusted during
	// recovery: a damaged WAL record outside the torn tail of the newest
	// segment, a sequence gap, or a snapshot that fails its checksum or
	// does not decode. See docs/PERSISTENCE.md for the recovery policy.
	ErrCorrupt = storage.ErrCorrupt

	// ErrVersion reports durable state written by an incompatible
	// on-disk format version: the bytes are intact, but this build
	// cannot read them — migrate or roll back instead of discarding.
	ErrVersion = storage.ErrVersion

	// ErrStateMismatch reports recovered state that was written under a
	// different monitor setup: another algorithm or window, a changed
	// community (users, preferences) or clustering. Rebuild the store
	// (replay the source stream) when the configuration legitimately
	// changed.
	ErrStateMismatch = errors.New("paretomon: stored state does not match this monitor configuration")

	// ErrStore reports a persistence I/O failure on a durable monitor: a
	// WAL append or snapshot write failed (disk full, permissions, ...).
	// It is a server-side fault, not a caller input error; after a
	// failed append the monitor refuses further durable mutations until
	// a restart recovers from the log.
	ErrStore = errors.New("paretomon: storage failure")

	// ErrLocked reports an Open (or NewFileStore) on a data directory
	// already held by another live process; the WAL is single-writer.
	// The lock releases when the owner exits, kill -9 included.
	ErrLocked = storage.ErrLocked

	// ErrReadOnly reports a mutation — Add, AddBatch, AddPreference,
	// RetractPreference, AddUser, RemoveUser, RemoveObject — on a
	// follower monitor (OpenFollower). Followers replicate the primary's
	// log; writes go to the primary, whose changefeed delivers them back
	// to every follower.
	ErrReadOnly = errors.New("paretomon: monitor is a read-only follower; write to the primary")

	// ErrWALRetired reports a changefeed request (Monitor.WALAfter, the
	// server's GET /wal) for a log position the store has pruned away:
	// snapshots made the records unnecessary for recovery and Prune
	// removed them. A follower that far behind re-bootstraps from the
	// newest snapshot instead of replaying the gap.
	ErrWALRetired = errors.New("paretomon: requested WAL position is no longer retained")

	// ErrMigrateMismatch reports a migration stream that cannot apply
	// here: the source exported at a different object-stream position
	// than this monitor holds (watermarks disagree), or an object-sync
	// stream whose slots diverge from the local registry. The fleet
	// orchestrator aligns the destination (object sync under the write
	// freeze) and retries; applying anyway would build wrong frontiers.
	ErrMigrateMismatch = errors.New("paretomon: migration stream position does not match this monitor")
)

// BatchError locates the first rejected object of an AddBatch call. The
// batch is validated before any object is ingested, so a BatchError means
// the monitor state is unchanged. It unwraps to the underlying sentinel:
//
//	var be *paretomon.BatchError
//	if errors.As(err, &be) && errors.Is(err, paretomon.ErrDuplicateObject) {
//	    log.Printf("object %d (%s) already ingested", be.Index, be.Object)
//	}
type BatchError struct {
	// Index is the offending object's position in the batch.
	Index int
	// Object is its name ("" when the name itself was empty).
	Object string
	// Err is the underlying error; it wraps one of the sentinels above.
	Err error
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("batch object %d (%q): %v", e.Index, e.Object, e.Err)
}

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *BatchError) Unwrap() error { return e.Err }
