package paretomon

import (
	"fmt"
	"io"

	"repro/internal/dataset"
)

// LoadCommunity builds a Community (schema + users + preferences) from the
// serialized formats written by cmd/datagen: an objects CSV whose header
// names the attributes, and a preference-profiles JSON holding each user's
// Hasse edges per attribute. Users are named u0, u1, … in file order.
// It returns the community plus the object rows (attribute values in
// schema order) ready to be replayed through Monitor.Add.
func LoadCommunity(objectsCSV, prefsJSON io.Reader) (*Community, [][]string, error) {
	doms, objs, err := dataset.ReadObjectsCSV(objectsCSV)
	if err != nil {
		return nil, nil, fmt.Errorf("paretomon: loading objects: %w", err)
	}
	names := make([]string, len(doms))
	for i, d := range doms {
		names[i] = d.Name()
	}
	schema := NewSchema(names...)
	com := NewCommunity(schema)

	profiles, err := dataset.ReadProfilesJSON(prefsJSON, doms)
	if err != nil {
		return nil, nil, fmt.Errorf("paretomon: loading preferences: %w", err)
	}
	for i, p := range profiles {
		u, err := com.AddUser(fmt.Sprintf("u%d", i))
		if err != nil {
			return nil, nil, err
		}
		for d := 0; d < p.Dims(); d++ {
			rel := p.Relation(d)
			for _, e := range rel.HasseTuples() {
				if err := u.Prefer(names[d], doms[d].Value(e.Better), doms[d].Value(e.Worse)); err != nil {
					return nil, nil, fmt.Errorf("paretomon: user u%d: %w", i, err)
				}
			}
		}
	}

	rows := make([][]string, len(objs))
	for i, o := range objs {
		row := make([]string, len(doms))
		for d, v := range o.Attrs {
			row[d] = doms[d].Value(int(v))
		}
		rows[i] = row
	}
	return com, rows, nil
}
