package paretomon_test

import (
	"fmt"

	paretomon "repro"
)

// Example_parallel shards ingestion across worker goroutines with
// WithWorkers. Clusters (or users, for Baseline) are partitioned across
// the workers, each maintaining its slice of the frontiers
// independently, so deliveries are identical to the sequential engines;
// AddBatch pipelines whole batches through the shards. The branch cut
// here is above any attainable similarity, so each of the three users is
// its own cluster and the request for four workers clamps to three.
func Example_parallel() {
	s := paretomon.NewSchema("brand", "CPU")
	com := paretomon.NewCommunity(s)
	for _, spec := range []struct {
		name   string
		brands []string
	}{
		{"alice", []string{"Apple", "Lenovo", "Toshiba"}},
		{"bob", []string{"Lenovo", "Toshiba", "Apple"}},
		{"carol", []string{"Toshiba", "Apple", "Lenovo"}},
	} {
		u, _ := com.AddUser(spec.name)
		_ = u.PreferChain("brand", spec.brands...)
		_ = u.PreferChain("CPU", "quad", "dual", "single")
	}

	mon, _ := paretomon.NewMonitor(com,
		paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerify),
		paretomon.WithBranchCut(1000),
		paretomon.WithWorkers(4),
	)
	ds, _ := mon.AddBatch([]paretomon.Object{
		{Name: "mac", Values: []string{"Apple", "dual"}},
		{Name: "think", Values: []string{"Lenovo", "quad"}},
		{Name: "tosh", Values: []string{"Toshiba", "single"}},
	})
	for _, d := range ds {
		fmt.Println(d.Object, d.Users)
	}
	fmt.Println("workers:", mon.Stats().Workers)
	// Output:
	// mac [alice bob carol]
	// think [alice bob carol]
	// tosh [carol]
	// workers: 3
}
