package paretomon_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	paretomon "repro"
)

func lifecycleSubCommunity(t *testing.T) *paretomon.Community {
	t.Helper()
	s := paretomon.NewSchema("brand", "cpu")
	com := paretomon.NewCommunity(s)
	for _, name := range []string{"alice", "bob"} {
		u, err := com.AddUser(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.PreferChain("brand", "Apple", "Sony", "Acer"); err != nil {
			t.Fatal(err)
		}
		if err := u.PreferChain("cpu", "quad", "dual"); err != nil {
			t.Fatal(err)
		}
	}
	return com
}

// TestSubscriptionTeardownOnRemoveUser pins the removed-user contract:
// every subscription channel of the removed user closes (consumers
// ranging over it terminate instead of leaking), and a post-removal
// Subscribe fails with ErrUnknownUser. Run under -race this also
// exercises concurrent consumers against the removal path.
func TestSubscriptionTeardownOnRemoveUser(t *testing.T) {
	com := lifecycleSubCommunity(t)
	m, err := paretomon.NewMonitor(com, paretomon.WithAlgorithm(paretomon.AlgorithmFilterThenVerify))
	if err != nil {
		t.Fatal(err)
	}

	legacy, cancelLegacy, err := m.Subscribe("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer cancelLegacy()
	deltas, cancelDeltas, err := m.SubscribeDeltas("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer cancelDeltas()

	// Concurrent consumers draining until close; they must terminate.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for range legacy {
		}
	}()
	go func() {
		defer wg.Done()
		for range deltas {
		}
	}()

	if _, err := m.Add("o1", "Apple", "quad"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveUser("bob"); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber channels not closed on RemoveUser: consumers leaked")
	}

	if _, _, err := m.Subscribe("bob"); !errors.Is(err, paretomon.ErrUnknownUser) {
		t.Errorf("Subscribe after removal: %v, want ErrUnknownUser", err)
	}
	if _, _, err := m.SubscribeDeltas("bob"); !errors.Is(err, paretomon.ErrUnknownUser) {
		t.Errorf("SubscribeDeltas after removal: %v, want ErrUnknownUser", err)
	}

	// Other users' subscriptions are untouched: alice still receives.
	ach, acancel, err := m.SubscribeDeltas("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer acancel()
	if _, err := m.Add("o2", "Apple", "quad"); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-ach:
		if d.Object != "o2" {
			t.Errorf("alice's delta = %+v, want o2", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alice's subscription died with bob's removal")
	}

	// Re-adding the name starts fresh: Subscribe works again.
	if err := m.AddUser("bob", nil); err != nil {
		t.Fatal(err)
	}
	if _, bcancel, err := m.Subscribe("bob"); err != nil {
		t.Errorf("Subscribe after re-add: %v", err)
	} else {
		bcancel()
	}
}

// TestFrontierDeltaEvents pins the v3 subscription payload end to end:
// ingestion is enter-only with the triggering object, RemoveObject
// reports the departure plus promotions, RetractPreference reports
// promotions, AddPreference reports evictions.
func TestFrontierDeltaEvents(t *testing.T) {
	com := lifecycleSubCommunity(t)
	m, err := paretomon.NewMonitor(com, paretomon.WithAlgorithm(paretomon.AlgorithmBaseline))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.SubscribeDeltas("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	next := func(what string) paretomon.FrontierDelta {
		t.Helper()
		select {
		case d := <-ch:
			return d
		case <-time.After(5 * time.Second):
			t.Fatalf("no delta for %s", what)
			panic("unreachable")
		}
	}

	// o1 (Apple, dual) enters; o2 (Sony, quad) is incomparable and enters.
	if _, err := m.Add("o1", "Apple", "dual"); err != nil {
		t.Fatal(err)
	}
	if d := next("o1"); d.Object != "o1" || !reflect.DeepEqual(d.Entered, []string{"o1"}) || d.Left != nil {
		t.Errorf("o1 delta = %+v", d)
	}
	if _, err := m.Add("o2", "Sony", "quad"); err != nil {
		t.Fatal(err)
	}
	next("o2")

	// o3 (Apple, quad) dominates both: enter-only event for o3 (the v3
	// ingestion payload does not track evictions), frontier now {o3}.
	if _, err := m.Add("o3", "Apple", "quad"); err != nil {
		t.Fatal(err)
	}
	if d := next("o3"); d.Object != "o3" || !reflect.DeepEqual(d.Entered, []string{"o3"}) {
		t.Errorf("o3 delta = %+v", d)
	}

	// Removing o3 promotes o1 and o2 back.
	if err := m.RemoveObject("o3"); err != nil {
		t.Fatal(err)
	}
	if d := next("remove o3"); d.Object != "" ||
		!reflect.DeepEqual(d.Left, []string{"o3"}) ||
		!reflect.DeepEqual(d.Entered, []string{"o1", "o2"}) {
		t.Errorf("removal delta = %+v, want o3 left, o1+o2 entered", d)
	}

	// A retraction that changes nothing publishes nothing: both alive
	// objects are already frontier members.
	if err := m.RetractPreference("alice", "brand", "Apple", "Sony"); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-ch:
		t.Fatalf("no-op retraction published %+v", d)
	case <-time.After(50 * time.Millisecond):
	}
	fr, err := m.Frontier("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fr, []string{"o1", "o2"}) {
		t.Fatalf("frontier before eviction test = %v", fr)
	}

	// Reversing the brand order makes o2 (Sony, quad) dominate o1
	// (Apple, dual): the AddPreference repair evicts o1.
	if err := m.AddPreference("alice", "brand", "Sony", "Apple"); err != nil {
		t.Fatal(err)
	}
	if d := next("addpref"); !reflect.DeepEqual(d.Left, []string{"o1"}) || len(d.Entered) != 0 {
		t.Errorf("AddPreference delta = %+v, want o1 evicted", d)
	}

	// Retracting that same tuple mends o1 back: a promotion event.
	if err := m.RetractPreference("alice", "brand", "Sony", "Apple"); err != nil {
		t.Fatal(err)
	}
	if d := next("retract promotes"); !reflect.DeepEqual(d.Entered, []string{"o1"}) || len(d.Left) != 0 {
		t.Errorf("retraction delta = %+v, want o1 promoted", d)
	}
}

// TestDeltaDropAccounting pins lossy backpressure on the delta channel:
// a stalled consumer loses oldest events, counted in DroppedDeliveries.
func TestDeltaDropAccounting(t *testing.T) {
	com := lifecycleSubCommunity(t)
	m, err := paretomon.NewMonitor(com,
		paretomon.WithAlgorithm(paretomon.AlgorithmBaseline),
		paretomon.WithSubscriptionBuffer(2))
	if err != nil {
		t.Fatal(err)
	}
	_, cancel, err := m.SubscribeDeltas("alice")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for i := 0; i < 8; i++ {
		// Identical twins: every one is Pareto-optimal and delivered.
		if _, err := m.Add(fmt.Sprintf("d%d", i), "Apple", "quad"); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.DroppedDeliveries == 0 {
		t.Error("stalled delta consumer recorded no drops")
	}
}
