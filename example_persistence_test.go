package paretomon_test

import (
	"fmt"
	"log"
	"os"

	paretomon "repro"
)

// Example_persistence shows the durable-monitor lifecycle: Open a
// monitor over a data directory, ingest, snapshot, reopen after a
// (simulated) restart, and observe the identical frontier. Everything
// an acknowledged Add has seen survives the restart even without the
// snapshot — the snapshot only bounds how much WAL replay the reopen
// performs.
func Example_persistence() {
	dir, err := os.MkdirTemp("", "paretomon-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	s := paretomon.NewSchema("display", "brand", "CPU")
	com := paretomon.NewCommunity(s)
	alice, _ := com.AddUser("alice")
	if err := alice.PreferChain("brand", "Apple", "Lenovo", "Toshiba"); err != nil {
		log.Fatal(err)
	}

	mon, err := paretomon.Open(com, dir)
	if err != nil {
		log.Fatal(err)
	}
	mon.Add("laptop-1", "13-15.9", "Toshiba", "dual")
	mon.Add("laptop-2", "13-15.9", "Apple", "dual") // dominates laptop-1 for alice
	mon.Add("laptop-3", "16-18.9", "Lenovo", "quad")
	if err := mon.Snapshot(); err != nil {
		log.Fatal(err)
	}
	before, _ := mon.Frontier("alice")
	mon.Close()

	// A new process: same community and options, same data directory.
	reopened, err := paretomon.Open(com, dir)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	after, _ := reopened.Frontier("alice")

	fmt.Println("before restart:", before)
	fmt.Println("after restart: ", after)
	fmt.Println("objects recovered:", reopened.ObjectCount())
	// Output:
	// before restart: [laptop-2 laptop-3]
	// after restart:  [laptop-2 laptop-3]
	// objects recovered: 3
}
