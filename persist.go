package paretomon

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/pref"
	"repro/internal/storage"
)

// Durable monitors. A Monitor built with WithStore writes every
// mutation — Add, AddBatch, AddPreference — to a write-ahead log before
// applying it, and periodically (WithSnapshotEvery, or an explicit
// Snapshot call) persists its full state at one log position. A monitor
// constructed over a non-empty store recovers first: the newest valid
// snapshot is loaded and the WAL tail behind it replayed, yielding
// state byte-for-byte equivalent to an uninterrupted run — frontiers
// keep their scan order, so deliveries, Frontier, TargetsOf, and even
// Stats counters continue exactly where the crashed process would have.
// See docs/PERSISTENCE.md for the on-disk format and operations guide.

// Store is the pluggable persistence backend a Monitor writes through:
// WAL record appends, snapshot write/load, and segment pruning. Two
// implementations ship with the package — NewFileStore (durable, binary
// segments + atomic snapshots) and NewMemStore (volatile, for tests) —
// and custom backends implement the same interface using the WALRecord
// and StoreStats types.
type Store = storage.Store

// WALRecord is one write-ahead-log entry: the raw input of a single
// monitor mutation (an object ingestion or an online preference
// addition), sufficient to replay it through a fresh engine.
type WALRecord = storage.Record

// WALOp discriminates WALRecord types.
type WALOp = storage.Op

// WAL record types: object ingestion (Add or one AddBatch element),
// online preference addition (AddPreference), and the v3 lifecycle
// mutations (AddUser, RemoveUser, RetractPreference, RemoveObject).
const (
	OpObject            WALOp = storage.OpObject
	OpPreference        WALOp = storage.OpPreference
	OpAddUser           WALOp = storage.OpAddUser
	OpRemoveUser        WALOp = storage.OpRemoveUser
	OpRetractPreference WALOp = storage.OpRetractPreference
	OpRemoveObject      WALOp = storage.OpRemoveObject
)

// StoreStats describes a store's footprint: live WAL segments and
// bytes, retained snapshots, and the appends performed by this process.
type StoreStats = storage.Stats

// NewFileStore opens (creating if needed) a durable file-backed store
// rooted at dir: length-prefixed, CRC-checked binary WAL segments plus
// atomically renamed snapshot files. Pass it to WithStore, or use Open
// which bundles the two.
func NewFileStore(dir string) (Store, error) { return storage.OpenFile(dir) }

// NewMemStore returns a volatile in-memory store with the same contract
// as NewFileStore: useful in tests and for handing state between
// monitor generations within one process.
func NewMemStore() Store { return storage.NewMem() }

// Open builds a durable monitor backed by a file store at dir: it is
// NewMonitor(c, opts..., WithStore(NewFileStore(dir))) plus ownership —
// the monitor closes the store when Close is called. If dir already
// holds state from a previous run, the monitor recovers it; the
// community and options must match the ones the state was written
// under (ErrStateMismatch otherwise).
func Open(c *Community, dir string, opts ...Option) (*Monitor, error) {
	st, err := storage.OpenFile(dir)
	if err != nil {
		return nil, err
	}
	all := make([]Option, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, WithStore(st))
	mon, err := NewMonitor(c, all...)
	if err != nil {
		st.Close()
		return nil, err
	}
	mon.ownsStore = true
	return mon, nil
}

// Snapshot persists the monitor's full state at the current WAL
// position and prunes log segments and older snapshots that recovery no
// longer needs. It returns ErrUnsupported if the monitor has no store.
// Automatic snapshots (WithSnapshotEvery) are best-effort; Snapshot is
// the checked path, which POST /snapshot exposes over HTTP.
//
// the WAL already ordered, so it is never itself WAL-logged.
//
//paretomon:nowal — a snapshot is derived state: it compacts the log
func (m *Monitor) Snapshot() error {
	if m.store == nil {
		return fmt.Errorf("%w: monitor has no store (use WithStore or Open)", ErrUnsupported)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.storeErr != nil {
		// After a failed append, memory and log may disagree; a snapshot
		// taken now would let the orphaned log records replay on top of
		// it. Restart and recover instead.
		return fmt.Errorf("%w: store unusable: %w", ErrStore, m.storeErr)
	}
	return m.writeSnapshotLocked()
}

// StorageStats reports the store's current footprint (WAL segments and
// bytes, snapshots, appends). It returns ErrUnsupported if the monitor
// has no store.
//
//paretomon:nowal — reads storage counters only.
func (m *Monitor) StorageStats() (StoreStats, error) {
	if m.store == nil {
		return StoreStats{}, fmt.Errorf("%w: monitor has no store (use WithStore or Open)", ErrUnsupported)
	}
	st, err := m.store.Stats()
	if err != nil {
		return st, err
	}
	// The store only sees this process's appends; the monitor's log
	// position also covers records recovered from prior incarnations.
	// Followers compare against this head (WaitSynced), so it must be
	// authoritative even on a freshly recovered, idle primary.
	m.mu.RLock()
	st.LastAppendedSeq = m.walSeq
	m.mu.RUnlock()
	return st, nil
}

// ObjectCount returns how many objects the monitor has ingested over
// its lifetime, including recovered ones (neither window expiry nor
// RemoveObject decreases it). Stream replayers use it to skip rows a
// recovered monitor already holds.
func (m *Monitor) ObjectCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// AliveObjectCount returns how many objects the monitor currently
// holds: ingested and not removed (window expiry does not free the
// name — an expired object still occupies its registry slot). Tenant
// quotas meter this number, not the lifetime ObjectCount.
func (m *Monitor) AliveObjectCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.names)
}

// appendWAL assigns sequence numbers to the pre-validated records and
// logs them as one contiguous WAL append (torn only at the tail, never
// interleaved). No-op without a store or during recovery replay. A
// failed append poisons the monitor's durable side: the log may hold a
// prefix of the records while memory holds none, so further mutations
// and snapshots are refused until a restart recovers from the log.
func (m *Monitor) appendWAL(recs []WALRecord) error {
	if m.store == nil || m.replaying {
		return nil
	}
	if m.storeErr != nil {
		return fmt.Errorf("%w: store unusable: %w", ErrStore, m.storeErr)
	}
	for i := range recs {
		recs[i].Seq = m.walSeq + 1 + uint64(i)
	}
	if err := m.store.Append(recs...); err != nil {
		m.storeErr = err
		return fmt.Errorf("%w: appending to WAL: %w", ErrStore, err)
	}
	m.walSeq += uint64(len(recs))
	m.rotateWALNotifyLocked()
	return nil
}

// rotateWALNotifyLocked wakes every WALNotify waiter — long-polling
// changefeed streams and WaitSynced — by closing the current notify
// channel and installing a fresh one. Every path that advances walSeq
// must call it, and must hold mu (write).
func (m *Monitor) rotateWALNotifyLocked() {
	close(m.walCh)
	m.walCh = make(chan struct{})
}

// objectRecords builds the WAL records for a validated object batch.
func objectRecords(objs []Object) []WALRecord {
	recs := make([]WALRecord, len(objs))
	for i, o := range objs {
		recs[i] = WALRecord{Op: OpObject, Name: o.Name, Values: o.Values}
	}
	return recs
}

// maybeSnapshotLocked counts applied records toward the WithSnapshotEvery
// threshold and snapshots when it is crossed. Failures are tolerated
// (the WAL already holds the data); the counter is only reset on
// success, so the next threshold crossing retries.
func (m *Monitor) maybeSnapshotLocked(applied int) {
	if m.store == nil || m.replaying || m.snapEvery <= 0 {
		return
	}
	m.sinceSnap += applied
	if m.sinceSnap >= m.snapEvery {
		_ = m.writeSnapshotLocked()
	}
}

// writeSnapshotLocked captures and persists the full monitor state at
// the current WAL position, then prunes. Since format version 2 the
// snapshot is self-contained: the evolved community (user table with
// asserted preference tuples), the clustering, and the full object
// registry travel with the engine state, so recovery needs no lifecycle
// replay behind the snapshot position. Caller holds mu.
func (m *Monitor) writeSnapshotLocked() error {
	eng, ok := m.eng.(core.StateEngine)
	if !ok {
		return fmt.Errorf("%w: %T does not support state capture", ErrUnsupported, m.eng)
	}
	st := core.NewEngineState(len(m.userNames), len(m.clusterMembers))
	eng.CaptureState(st)
	dims := len(m.schema.doms)
	users := make([]storage.UserState, len(m.userNames))
	for i := range m.userNames {
		us := storage.UserState{Name: m.userNames[i], Alive: m.userAlive[i], Prefs: make([][][2]int, dims)}
		if m.userAlive[i] {
			for d := 0; d < dims; d++ {
				for _, t := range m.profiles[i].Relation(d).Asserted() {
					us.Prefs[d] = append(us.Prefs[d], [2]int{t.Better, t.Worse})
				}
			}
		}
		users[i] = us
	}
	objs := make([]storage.ObjectState, len(m.objects))
	for i, e := range m.objects {
		objs[i] = storage.ObjectState{Name: e.name, Alive: e.alive, Attrs: e.obj.Attrs}
	}
	snap := &storage.Snapshot{
		Algorithm:    uint8(m.cfg.Algorithm),
		Window:       m.cfg.Window,
		Measure:      uint8(m.cfg.Measure),
		BranchCut:    m.cfg.BranchCut,
		ClusterCount: m.cfg.ClusterCount,
		Theta1:       m.cfg.Theta1,
		Theta2:       m.cfg.Theta2,
		BaseUsers:    m.baseUsers,
		Users:        users,
		Clusters:     m.clusterMembers,
		Domains:      m.schema.domainValues(),
		Objects:      objs,
		Counters:     m.counterTotals(),
		Engine:       st,
	}
	if err := m.store.WriteSnapshot(m.walSeq, snap.Marshal()); err != nil {
		return fmt.Errorf("%w: writing snapshot: %w", ErrStore, err)
	}
	m.sinceSnap = 0
	if err := m.store.Prune(); err != nil {
		return fmt.Errorf("%w: pruning store: %w", ErrStore, err)
	}
	return nil
}

// domainValues returns each attribute's interned values in id order.
func (s *Schema) domainValues() [][]string {
	out := make([][]string, len(s.doms))
	for i, d := range s.doms {
		out[i] = d.Values()
	}
	return out
}

// replayRecord applies one WAL record through the same code paths the
// live mutations use, so the resulting state and work counters are
// identical to an uninterrupted run's. It serves two callers: recovery
// replay (m.replaying true — publication suppressed, history must never
// reach subscribers) and the follower feed apply loop (m.replaying
// false — subscribers observe replicated mutations as deliveries and
// FrontierDelta events, exactly as the primary's subscribers do). A
// record that does not apply cleanly means the log and the local state
// have diverged — corrupt state, not a caller input error.
func (m *Monitor) replayRecord(rec WALRecord) error {
	corrupt := func(err error) error {
		return fmt.Errorf("%w: replaying WAL record %d: %v", ErrCorrupt, rec.Seq, err)
	}
	switch rec.Op {
	case OpObject:
		o := Object{Name: rec.Name, Values: rec.Values}
		if err := m.validateObject(o, nil); err != nil {
			return corrupt(err)
		}
		m.ingest(o)
	case OpPreference:
		idx, err := m.user(rec.User)
		if err != nil {
			return corrupt(err)
		}
		d, ok := m.schema.attrIndex(rec.Attr)
		if !ok {
			return corrupt(fmt.Errorf("unknown attribute %q", rec.Attr))
		}
		var before []int
		if !m.replaying {
			before = m.frontierIDs(idx)
		}
		if err := m.applyPreferenceLocked(idx, d, rec.User, rec.Attr, rec.Better, rec.Worse); err != nil {
			return corrupt(err)
		}
		m.publishDeltaLocked(idx, "", before)
	case OpAddUser:
		if rec.Name == "" {
			return corrupt(fmt.Errorf("empty user name"))
		}
		if _, dup := m.userIdx[rec.Name]; dup {
			return corrupt(fmt.Errorf("user %q already alive", rec.Name))
		}
		prefs := make([]Preference, len(rec.Prefs))
		for i, p := range rec.Prefs {
			prefs[i] = Preference{Attr: p.Attr, Better: p.Better, Worse: p.Worse}
		}
		p, err := m.buildUserProfile(rec.Name, prefs)
		if err != nil {
			return corrupt(err)
		}
		m.applyAddUserLocked(rec.Name, p)
	case OpRemoveUser:
		idx, err := m.user(rec.User)
		if err != nil {
			return corrupt(err)
		}
		m.applyRemoveUserLocked(idx)
	case OpRetractPreference:
		idx, d, b, w, err := m.checkRetractLocked(rec.User, rec.Attr, rec.Better, rec.Worse)
		if err != nil {
			return corrupt(err)
		}
		var before []int
		if !m.replaying {
			before = m.frontierIDs(idx)
		}
		m.applyRetractLocked(idx, d, b, w)
		m.publishDeltaLocked(idx, "", before)
	case OpRemoveObject:
		id, ok := m.names[rec.Name]
		if !ok {
			return corrupt(fmt.Errorf("unknown object %q", rec.Name))
		}
		var affected []int
		var before [][]int
		if t, ok := m.eng.(interface{ Targets(objID int) []int }); ok && !m.replaying {
			affected = t.Targets(id)
			before = make([][]int, len(affected))
			for i, c := range affected {
				before[i] = m.frontierIDs(c)
			}
		}
		m.applyRemoveObjectLocked(id)
		for i, c := range affected {
			m.publishDeltaLocked(c, "", before[i])
		}
	default:
		return fmt.Errorf("%w: WAL record %d has unknown op %d", ErrCorrupt, rec.Seq, rec.Op)
	}
	m.walSeq = rec.Seq
	return nil
}

// buildFromSnapshot rebuilds the monitor from a decoded self-contained
// snapshot. The snapshot is authoritative for the evolved community —
// users added or removed, preferences grown or retracted, objects
// deleted — while the caller-provided community must match the
// snapshot's construction-time base (its first BaseUsers slots); every
// divergence from the recorded configuration is ErrStateMismatch so
// recovery fails loudly instead of serving wrong frontiers.
func (m *Monitor) buildFromSnapshot(c *Community, snap *storage.Snapshot) error {
	if snap.Algorithm != uint8(m.cfg.Algorithm) || snap.Window != m.cfg.Window ||
		snap.Measure != uint8(m.cfg.Measure) || snap.BranchCut != m.cfg.BranchCut ||
		snap.ClusterCount != m.cfg.ClusterCount ||
		snap.Theta1 != m.cfg.Theta1 || snap.Theta2 != m.cfg.Theta2 {
		return fmt.Errorf("%w: snapshot was written under a different monitor configuration", ErrStateMismatch)
	}
	if snap.BaseUsers != c.Len() || snap.BaseUsers > len(snap.Users) {
		return fmt.Errorf("%w: snapshot community is based on %d users, provided community has %d",
			ErrStateMismatch, snap.BaseUsers, c.Len())
	}
	for i := 0; i < snap.BaseUsers; i++ {
		if snap.Users[i].Name != c.users[i].name {
			return fmt.Errorf("%w: snapshot base user %d is %q, community has %q",
				ErrStateMismatch, i, snap.Users[i].Name, c.users[i].name)
		}
	}
	dims := len(m.schema.doms)
	if len(snap.Domains) != dims {
		return fmt.Errorf("%w: snapshot has %d attributes, schema has %d", ErrStateMismatch, len(snap.Domains), dims)
	}
	// Re-intern the snapshot's domain tables in id order. The values the
	// community's preferences already interned must come back with the
	// same ids; the rest (first seen in objects or lifecycle updates)
	// extend the tables so recorded value ids stay meaningful.
	for d, values := range snap.Domains {
		for want, v := range values {
			if got := m.schema.doms[d].Intern(v); got != want {
				return fmt.Errorf("%w: attribute %q value %q interned as %d, snapshot has %d (changed preferences?)",
					ErrStateMismatch, m.schema.doms[d].Name(), v, got, want)
			}
		}
	}
	m.baseUsers = snap.BaseUsers

	// Rebuild the community table: profiles re-assert their recorded
	// tuples in order, reproducing both the closure and the retractable
	// base exactly.
	m.userNames = make([]string, len(snap.Users))
	m.userAlive = make([]bool, len(snap.Users))
	m.profiles = make([]*pref.Profile, len(snap.Users))
	for i, us := range snap.Users {
		m.userNames[i] = us.Name
		m.userAlive[i] = us.Alive
		p := pref.NewProfile(m.schema.doms)
		for d := 0; d < dims && d < len(us.Prefs); d++ {
			domSize := m.schema.doms[d].Size()
			for _, t := range us.Prefs[d] {
				if t[0] < 0 || t[0] >= domSize || t[1] < 0 || t[1] >= domSize {
					return fmt.Errorf("%w: snapshot preference tuple (%d,%d) outside attribute %q's domain",
						ErrCorrupt, t[0], t[1], m.schema.doms[d].Name())
				}
				if err := p.Relation(d).Add(t[0], t[1]); err != nil {
					return fmt.Errorf("%w: reasserting snapshot preferences of %q: %v", ErrCorrupt, us.Name, err)
				}
			}
		}
		m.profiles[i] = p
		if us.Alive {
			if _, dup := m.userIdx[us.Name]; dup {
				return fmt.Errorf("%w: snapshot has two alive users named %q", ErrCorrupt, us.Name)
			}
			m.userIdx[us.Name] = i
		}
	}

	// Rebuild the object registry.
	m.objects = make([]objEntry, len(snap.Objects))
	for id, os := range snap.Objects {
		if len(os.Attrs) != dims {
			return fmt.Errorf("%w: snapshot object %q has %d attributes, schema has %d", ErrCorrupt, os.Name, len(os.Attrs), dims)
		}
		m.objects[id] = objEntry{name: os.Name, obj: object.Object{ID: id, Attrs: os.Attrs}, alive: os.Alive}
		if os.Alive {
			if _, dup := m.names[os.Name]; dup {
				return fmt.Errorf("%w: snapshot has two alive objects named %q", ErrCorrupt, os.Name)
			}
			m.names[os.Name] = id
		}
	}

	// Rebuild the clustering (dormant clusters stay as placeholders so
	// cluster indices keyed into the engine state resolve), recompute
	// each common relation from the restored member profiles, and
	// construct the engine over the evolved community.
	var clusters []core.Cluster
	if m.cfg.Algorithm != AlgorithmBaseline {
		clusters = make([]core.Cluster, len(snap.Clusters))
		for ui, members := range snap.Clusters {
			ms := append([]int(nil), members...)
			for _, c := range ms {
				if c < 0 || c >= len(m.profiles) || !m.userAlive[c] {
					return fmt.Errorf("%w: snapshot cluster %d references user %d", ErrCorrupt, ui, c)
				}
			}
			cl := core.Cluster{Members: ms}
			if len(ms) > 0 {
				ps := make([]*pref.Profile, len(ms))
				for i, c := range ms {
					ps[i] = m.profiles[c]
				}
				cl.Common = m.commonFn(ps)
			}
			clusters[ui] = cl
			m.clusterMembers = append(m.clusterMembers, ms)
			m.clusters = append(m.clusters, m.sortedNames(ms))
		}
	} else if len(snap.Clusters) != 0 {
		return fmt.Errorf("%w: snapshot has clusters but the configured algorithm is Baseline", ErrCorrupt)
	}
	m.buildEngineFor(clusters)

	eng, ok := m.eng.(core.StateEngine)
	if !ok {
		return fmt.Errorf("%w: %T does not support state restore", ErrUnsupported, m.eng)
	}
	if err := eng.RestoreState(snap.Engine); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	*m.ctr = snap.Counters
	return nil
}
