package paretomon

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
)

// Durable monitors. A Monitor built with WithStore writes every
// mutation — Add, AddBatch, AddPreference — to a write-ahead log before
// applying it, and periodically (WithSnapshotEvery, or an explicit
// Snapshot call) persists its full state at one log position. A monitor
// constructed over a non-empty store recovers first: the newest valid
// snapshot is loaded and the WAL tail behind it replayed, yielding
// state byte-for-byte equivalent to an uninterrupted run — frontiers
// keep their scan order, so deliveries, Frontier, TargetsOf, and even
// Stats counters continue exactly where the crashed process would have.
// See docs/PERSISTENCE.md for the on-disk format and operations guide.

// Store is the pluggable persistence backend a Monitor writes through:
// WAL record appends, snapshot write/load, and segment pruning. Two
// implementations ship with the package — NewFileStore (durable, binary
// segments + atomic snapshots) and NewMemStore (volatile, for tests) —
// and custom backends implement the same interface using the WALRecord
// and StoreStats types.
type Store = storage.Store

// WALRecord is one write-ahead-log entry: the raw input of a single
// monitor mutation (an object ingestion or an online preference
// addition), sufficient to replay it through a fresh engine.
type WALRecord = storage.Record

// WALOp discriminates WALRecord types.
type WALOp = storage.Op

// WAL record types: an object ingestion (Add or one AddBatch element)
// or an online preference addition (AddPreference).
const (
	OpObject     WALOp = storage.OpObject
	OpPreference WALOp = storage.OpPreference
)

// StoreStats describes a store's footprint: live WAL segments and
// bytes, retained snapshots, and the appends performed by this process.
type StoreStats = storage.Stats

// NewFileStore opens (creating if needed) a durable file-backed store
// rooted at dir: length-prefixed, CRC-checked binary WAL segments plus
// atomically renamed snapshot files. Pass it to WithStore, or use Open
// which bundles the two.
func NewFileStore(dir string) (Store, error) { return storage.OpenFile(dir) }

// NewMemStore returns a volatile in-memory store with the same contract
// as NewFileStore: useful in tests and for handing state between
// monitor generations within one process.
func NewMemStore() Store { return storage.NewMem() }

// Open builds a durable monitor backed by a file store at dir: it is
// NewMonitor(c, opts..., WithStore(NewFileStore(dir))) plus ownership —
// the monitor closes the store when Close is called. If dir already
// holds state from a previous run, the monitor recovers it; the
// community and options must match the ones the state was written
// under (ErrStateMismatch otherwise).
func Open(c *Community, dir string, opts ...Option) (*Monitor, error) {
	st, err := storage.OpenFile(dir)
	if err != nil {
		return nil, err
	}
	all := make([]Option, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, WithStore(st))
	mon, err := NewMonitor(c, all...)
	if err != nil {
		st.Close()
		return nil, err
	}
	mon.ownsStore = true
	return mon, nil
}

// Snapshot persists the monitor's full state at the current WAL
// position and prunes log segments and older snapshots that recovery no
// longer needs. It returns ErrUnsupported if the monitor has no store.
// Automatic snapshots (WithSnapshotEvery) are best-effort; Snapshot is
// the checked path, which POST /snapshot exposes over HTTP.
func (m *Monitor) Snapshot() error {
	if m.store == nil {
		return fmt.Errorf("%w: monitor has no store (use WithStore or Open)", ErrUnsupported)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.storeErr != nil {
		// After a failed append, memory and log may disagree; a snapshot
		// taken now would let the orphaned log records replay on top of
		// it. Restart and recover instead.
		return fmt.Errorf("%w: store unusable: %w", ErrStore, m.storeErr)
	}
	return m.writeSnapshotLocked()
}

// StorageStats reports the store's current footprint (WAL segments and
// bytes, snapshots, appends). It returns ErrUnsupported if the monitor
// has no store.
func (m *Monitor) StorageStats() (StoreStats, error) {
	if m.store == nil {
		return StoreStats{}, fmt.Errorf("%w: monitor has no store (use WithStore or Open)", ErrUnsupported)
	}
	return m.store.Stats()
}

// ObjectCount returns how many objects the monitor has ingested over
// its lifetime, including recovered ones (window expiry does not
// decrease it). Stream replayers use it to skip rows a recovered
// monitor already holds.
func (m *Monitor) ObjectCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.lookup)
}

// appendWAL assigns sequence numbers to the pre-validated records and
// logs them as one contiguous WAL append (torn only at the tail, never
// interleaved). No-op without a store or during recovery replay. A
// failed append poisons the monitor's durable side: the log may hold a
// prefix of the records while memory holds none, so further mutations
// and snapshots are refused until a restart recovers from the log.
func (m *Monitor) appendWAL(recs []WALRecord) error {
	if m.store == nil || m.replaying {
		return nil
	}
	if m.storeErr != nil {
		return fmt.Errorf("%w: store unusable: %w", ErrStore, m.storeErr)
	}
	for i := range recs {
		recs[i].Seq = m.walSeq + 1 + uint64(i)
	}
	if err := m.store.Append(recs...); err != nil {
		m.storeErr = err
		return fmt.Errorf("%w: appending to WAL: %w", ErrStore, err)
	}
	m.walSeq += uint64(len(recs))
	return nil
}

// objectRecords builds the WAL records for a validated object batch.
func objectRecords(objs []Object) []WALRecord {
	recs := make([]WALRecord, len(objs))
	for i, o := range objs {
		recs[i] = WALRecord{Op: OpObject, Name: o.Name, Values: o.Values}
	}
	return recs
}

// maybeSnapshotLocked counts applied records toward the WithSnapshotEvery
// threshold and snapshots when it is crossed. Failures are tolerated
// (the WAL already holds the data); the counter is only reset on
// success, so the next threshold crossing retries.
func (m *Monitor) maybeSnapshotLocked(applied int) {
	if m.store == nil || m.replaying || m.snapEvery <= 0 {
		return
	}
	m.sinceSnap += applied
	if m.sinceSnap >= m.snapEvery {
		_ = m.writeSnapshotLocked()
	}
}

// writeSnapshotLocked captures and persists the full monitor state at
// the current WAL position, then prunes. Caller holds mu.
func (m *Monitor) writeSnapshotLocked() error {
	eng, ok := m.eng.(core.StateEngine)
	if !ok {
		return fmt.Errorf("%w: %T does not support state capture", ErrUnsupported, m.eng)
	}
	st := core.NewEngineState(len(m.userNames), len(m.clusterMembers))
	eng.CaptureState(st)
	snap := &storage.Snapshot{
		Algorithm:    uint8(m.cfg.Algorithm),
		Window:       m.cfg.Window,
		Measure:      uint8(m.cfg.Measure),
		BranchCut:    m.cfg.BranchCut,
		ClusterCount: m.cfg.ClusterCount,
		Theta1:       m.cfg.Theta1,
		Theta2:       m.cfg.Theta2,
		UserNames:    m.userNames,
		Clusters:     m.clusterMembers,
		Domains:      m.schema.domainValues(),
		Objects:      m.lookup,
		Prefs:        m.prefLog,
		Counters:     m.ctr.Snapshot(),
		Engine:       st,
	}
	if err := m.store.WriteSnapshot(m.walSeq, snap.Marshal()); err != nil {
		return fmt.Errorf("%w: writing snapshot: %w", ErrStore, err)
	}
	m.sinceSnap = 0
	if err := m.store.Prune(); err != nil {
		return fmt.Errorf("%w: pruning store: %w", ErrStore, err)
	}
	return nil
}

// domainValues returns each attribute's interned values in id order.
func (s *Schema) domainValues() [][]string {
	out := make([][]string, len(s.doms))
	for i, d := range s.doms {
		out[i] = d.Values()
	}
	return out
}

// recover rebuilds state from the store: newest valid snapshot first,
// then the WAL tail behind it, replayed through the normal ingestion
// path with publication and re-logging suppressed. Runs during
// construction, before the monitor is shared, so no locking is needed.
func (m *Monitor) recover() error {
	m.replaying = true
	defer func() { m.replaying = false }()
	seq, body, ok, err := m.store.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("paretomon: loading snapshot: %w", err)
	}
	if ok {
		snap, err := storage.UnmarshalSnapshot(body)
		if err != nil {
			return fmt.Errorf("paretomon: decoding snapshot: %w", err)
		}
		if err := m.restoreSnapshot(snap); err != nil {
			return err
		}
		m.walSeq = seq
	}
	if err := m.store.Replay(m.walSeq, m.replayRecord); err != nil {
		return err
	}
	// Per-shard cumulative counters exist to show live load skew;
	// recovery work (state restore, preference re-application, log
	// replay) would skew that picture, so they restart at zero while
	// the public totals above are restored exactly.
	if eng, ok := m.eng.(interface{ ResetShardCounters() }); ok {
		eng.ResetShardCounters()
	}
	return nil
}

// replayRecord applies one WAL record during recovery. A record that no
// longer applies cleanly means the log and the provided community have
// diverged — corrupt state, not a caller input error.
func (m *Monitor) replayRecord(rec WALRecord) error {
	switch rec.Op {
	case OpObject:
		o := Object{Name: rec.Name, Values: rec.Values}
		if err := m.validateObject(o, nil); err != nil {
			return fmt.Errorf("%w: replaying WAL record %d: %v", ErrCorrupt, rec.Seq, err)
		}
		m.ingest(o)
	case OpPreference:
		idx, err := m.user(rec.User)
		if err != nil {
			return fmt.Errorf("%w: replaying WAL record %d: %v", ErrCorrupt, rec.Seq, err)
		}
		d, ok := m.schema.attrIndex(rec.Attr)
		if !ok {
			return fmt.Errorf("%w: replaying WAL record %d: unknown attribute %q", ErrCorrupt, rec.Seq, rec.Attr)
		}
		if err := m.applyPreferenceLocked(idx, d, rec.User, rec.Attr, rec.Better, rec.Worse); err != nil {
			return fmt.Errorf("%w: replaying WAL record %d: %v", ErrCorrupt, rec.Seq, err)
		}
	default:
		return fmt.Errorf("%w: WAL record %d has unknown op %d", ErrCorrupt, rec.Seq, rec.Op)
	}
	m.walSeq = rec.Seq
	return nil
}

// restoreSnapshot rebuilds the monitor from a decoded snapshot. The
// freshly constructed monitor (community, options, clustering) must
// match what the snapshot was written under; every divergence is
// ErrStateMismatch so recovery fails loudly instead of serving wrong
// frontiers.
func (m *Monitor) restoreSnapshot(snap *storage.Snapshot) error {
	if snap.Algorithm != uint8(m.cfg.Algorithm) || snap.Window != m.cfg.Window ||
		snap.Measure != uint8(m.cfg.Measure) || snap.BranchCut != m.cfg.BranchCut ||
		snap.ClusterCount != m.cfg.ClusterCount ||
		snap.Theta1 != m.cfg.Theta1 || snap.Theta2 != m.cfg.Theta2 {
		return fmt.Errorf("%w: snapshot was written under a different monitor configuration", ErrStateMismatch)
	}
	if len(snap.UserNames) != len(m.userNames) {
		return fmt.Errorf("%w: snapshot has %d users, community has %d", ErrStateMismatch, len(snap.UserNames), len(m.userNames))
	}
	for i, name := range snap.UserNames {
		if name != m.userNames[i] {
			return fmt.Errorf("%w: snapshot user %d is %q, community has %q", ErrStateMismatch, i, name, m.userNames[i])
		}
	}
	if len(snap.Clusters) != len(m.clusterMembers) {
		return fmt.Errorf("%w: snapshot has %d clusters, this monitor clustered %d (changed preferences?)",
			ErrStateMismatch, len(snap.Clusters), len(m.clusterMembers))
	}
	for ui, members := range snap.Clusters {
		got := m.clusterMembers[ui]
		if len(members) != len(got) {
			return fmt.Errorf("%w: cluster %d membership differs from the snapshot's", ErrStateMismatch, ui)
		}
		for i, c := range members {
			if c != got[i] {
				return fmt.Errorf("%w: cluster %d membership differs from the snapshot's", ErrStateMismatch, ui)
			}
		}
	}
	if len(snap.Domains) != len(m.schema.doms) {
		return fmt.Errorf("%w: snapshot has %d attributes, schema has %d", ErrStateMismatch, len(snap.Domains), len(m.schema.doms))
	}
	// Re-intern the snapshot's domain tables in id order. The values the
	// community's preferences already interned must come back with the
	// same ids; the rest (first seen in objects) extend the tables so the
	// value ids baked into restored frontier objects stay meaningful.
	for d, values := range snap.Domains {
		for want, v := range values {
			if got := m.schema.doms[d].Intern(v); got != want {
				return fmt.Errorf("%w: attribute %q value %q interned as %d, snapshot has %d (changed preferences?)",
					ErrStateMismatch, m.schema.doms[d].Name(), v, got, want)
			}
		}
	}
	m.lookup = append([]string(nil), snap.Objects...)
	for id, name := range m.lookup {
		m.names[name] = id
	}
	eng, ok := m.eng.(core.StateEngine)
	if !ok {
		return fmt.Errorf("%w: %T does not support state restore", ErrUnsupported, m.eng)
	}
	if err := eng.RestoreState(snap.Engine); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Re-grow the rebuilt preference profiles with the recorded online
	// updates. The restored frontiers already reflect their repairs
	// (growth is monotone, so re-repairing removes nothing), and the
	// counter overwrite below erases the re-repairs' comparison counts.
	for _, p := range snap.Prefs {
		if p.User < 0 || p.User >= len(m.userNames) || p.Dim < 0 || p.Dim >= len(m.schema.doms) {
			return fmt.Errorf("%w: snapshot preference update references user %d / attribute %d", ErrCorrupt, p.User, p.Dim)
		}
		attr := m.schema.doms[p.Dim].Name()
		if err := m.applyPreferenceLocked(p.User, p.Dim, m.userNames[p.User], attr, p.Better, p.Worse); err != nil {
			return fmt.Errorf("%w: reapplying snapshot preference update: %v", ErrCorrupt, err)
		}
	}
	*m.ctr = snap.Counters
	return nil
}
