package paretomon

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/replica"
	"repro/internal/storage"
)

// Read-scaling replication, follower side. OpenFollower builds a
// read-only Monitor that bootstraps from a primary's newest snapshot
// and then tails its WAL changefeed over HTTP, applying every record
// through the same live mutation paths the primary used — so the
// follower's frontiers, targets, clusters, and work counters are
// identical to the primary's at the same log position. Reads (Frontier,
// TargetsOf, Stats, Subscribe...) serve locally; mutations return
// ErrReadOnly. See docs/REPLICATION.md for the topology and operations
// guide.

// followerState is the feed-tailing side of a follower Monitor.
type followerState struct {
	primary string
	client  *replica.Client
	// com is the construction-time base community, pinned against every
	// snapshot the follower (re-)bootstraps from.
	com    *Community
	cancel context.CancelFunc
	done   chan struct{}

	head         atomic.Uint64
	connected    atomic.Bool
	rebootstraps atomic.Uint64
	err          atomic.Value // error: fatal apply divergence
}

// advanceHead moves the head watermark monotonically forward.
func (f *followerState) advanceHead(seq uint64) {
	for {
		cur := f.head.Load()
		if seq <= cur || f.head.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// followerBootstrapTimeout bounds the initial snapshot fetch so a
// misconfigured primary URL fails fast instead of hanging OpenFollower.
const followerBootstrapTimeout = 30 * time.Second

// OpenFollower builds a read-only replica of the primary serving at
// primaryURL (a durable monitor behind internal/server, e.g.
// "http://primary:8080"). The community and options must mirror the
// primary's — algorithm, window, clustering — or bootstrap fails with
// ErrStateMismatch; WithWorkers may differ (the shard layout is local).
// WithStore and WithSnapshotEvery are rejected with ErrBadOption:
// followers keep no log of their own, the primary's is the only truth.
//
// OpenFollower fetches the primary's newest snapshot synchronously (so
// an unreachable primary fails here), then returns while a background
// goroutine tails the changefeed: resuming from the applied position
// with exponential backoff across disconnects and primary restarts, and
// re-bootstrapping from a fresh snapshot if the primary prunes past the
// follower's position. Replication() and Lag() report progress;
// WaitSynced blocks until caught up. Close stops the tail goroutine.
func OpenFollower(c *Community, primaryURL string, opts ...Option) (*Monitor, error) {
	cfg := DefaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.Store != nil || cfg.SnapshotEvery != 0 {
		return nil, fmt.Errorf("%w: a follower cannot have its own store; the primary owns the log", ErrBadOption)
	}
	client := replica.NewClient(primaryURL)
	ctx, cancelBoot := context.WithTimeout(context.Background(), followerBootstrapTimeout)
	seq, body, ok, err := client.Snapshot(ctx)
	cancelBoot()
	if err != nil {
		return nil, fmt.Errorf("paretomon: bootstrapping follower from %s: %w", primaryURL, err)
	}
	m, err := newFollowerMonitor(c, cfg, seq, body, ok)
	if err != nil {
		return nil, err
	}

	tailCtx, cancel := context.WithCancel(context.Background())
	f := &followerState{
		primary: client.Base,
		client:  client,
		com:     c,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	f.head.Store(seq)
	m.readOnly = true
	m.follower = f

	tailer := &replica.Tailer{
		Client: client,
		Hooks: replica.Hooks{
			Applied:     m.AppliedSeq,
			Apply:       m.applyFeedRecord,
			Head:        f.advanceHead,
			Rebootstrap: m.rebootstrapFollower,
			Connected:   func(up bool) { f.connected.Store(up) },
		},
	}
	go func() {
		defer close(f.done)
		if err := tailer.Run(tailCtx); err != nil {
			f.err.Store(err)
		}
	}()
	return m, nil
}

// newFollowerMonitor builds a validated monitor from a fetched primary
// snapshot — the recovery restore path, minus a store — or fresh from
// the community when the primary has none (haveSnap false; the whole
// log is then still retained and the feed tails from 0). Shared by
// OpenFollower and rebootstrapFollower so the two bootstrap paths can
// never drift apart.
func newFollowerMonitor(c *Community, cfg Config, seq uint64, body []byte, haveSnap bool) (*Monitor, error) {
	m, err := monitorShell(c, cfg)
	if err != nil {
		return nil, err
	}
	if !haveSnap {
		if err := m.buildFromCommunity(c); err != nil {
			return nil, err
		}
		return m, nil
	}
	snap, err := storage.UnmarshalSnapshot(body)
	if err != nil {
		return nil, fmt.Errorf("paretomon: decoding primary snapshot: %w", err)
	}
	if err := m.buildFromSnapshot(c, snap); err != nil {
		return nil, err
	}
	m.walSeq = seq
	if eng, ok := m.eng.(interface{ ResetShardCounters() }); ok {
		eng.ResetShardCounters()
	}
	return m, nil
}

// applyFeedRecord applies one replicated WAL record under the write
// lock. Records at or below the applied position are skipped — a resumed
// stream can never double-apply — and a sequence jump is ErrCorrupt (the
// feed protocol delivers contiguously; a gap means the transports or the
// primary lied).
func (m *Monitor) applyFeedRecord(rec WALRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec.Seq <= m.walSeq {
		return nil
	}
	if rec.Seq != m.walSeq+1 {
		return fmt.Errorf("%w: feed jumped to record %d with %d applied", ErrCorrupt, rec.Seq, m.walSeq)
	}
	if err := m.replayRecord(rec); err != nil {
		return err
	}
	m.rotateWALNotifyLocked()
	return nil
}

// rebootstrapFollower rebuilds the follower from the primary's newest
// snapshot after the feed position was pruned away (ErrGone): reads
// jump from the last applied position to the snapshot position in one
// step. The replacement state is built and validated on a scratch
// monitor first, so any failure — an undecodable snapshot, a primary
// reconfigured out from under us (ErrStateMismatch) — leaves the
// serving state untouched; those failures are replica.ErrPermanent,
// which stops the tailer instead of looping reset-and-fail. Subscribers
// keep their registrations — user slots are append-only, so indices
// stay stable across the jump — but the skipped interval produces no
// delta events; consumers needing the full picture resynchronize via
// Frontier. Subscriptions of users removed inside the gap are closed,
// exactly as a live RemoveUser would.
func (m *Monitor) rebootstrapFollower(ctx context.Context) error {
	f := m.follower
	seq, body, ok, err := f.client.Snapshot(ctx)
	if err != nil {
		return err // transient (network): retried with backoff
	}
	if !ok {
		return fmt.Errorf("%w: primary retired feed position %d but serves no snapshot (%v)",
			replica.ErrPermanent, m.AppliedSeq(), ErrCorrupt)
	}
	fresh, err := newFollowerMonitor(f.com, m.cfg, seq, body, true)
	if err != nil {
		return fmt.Errorf("%w: %v", replica.ErrPermanent, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if seq <= m.walSeq {
		return nil // raced with our own tail: already at or past it
	}
	aliveBefore := m.userAlive
	// Transplant the validated state; m keeps its identity (lock,
	// subscriptions, walCh, follower handle) so readers and subscribers
	// carry across the jump.
	m.schema = fresh.schema
	m.userIdx = fresh.userIdx
	m.userNames = fresh.userNames
	m.userAlive = fresh.userAlive
	m.baseUsers = fresh.baseUsers
	m.profiles = fresh.profiles
	m.commonFn = fresh.commonFn
	m.clusters = fresh.clusters
	m.clusterMembers = fresh.clusterMembers
	m.names = fresh.names
	m.objects = fresh.objects
	m.eng = fresh.eng
	m.ctr = fresh.ctr
	m.walSeq = seq
	f.rebootstraps.Add(1)
	f.advanceHead(seq)
	for i, wasAlive := range aliveBefore {
		if wasAlive && (i >= len(m.userAlive) || !m.userAlive[i]) {
			m.subs.closeUser(i)
		}
	}
	m.rotateWALNotifyLocked()
	return nil
}

// WaitSynced blocks until the follower has applied every record the
// primary held at some instant during the call, or until ctx ends. The
// check is strong: the primary's actual head is read synchronously (its
// /storage/stats), not taken from the feed's possibly-stale watermarks,
// so a true return means the follower reached a position the primary
// really had — records still in flight behind a shipped page cannot
// fake it. It returns immediately on a primary (nil) and returns the
// fatal replication error if the apply loop has stopped.
func (m *Monitor) WaitSynced(ctx context.Context) error {
	f := m.follower
	if f == nil {
		return nil
	}
	for {
		if err, _ := f.err.Load().(error); err != nil {
			return err
		}
		head, err := f.client.Head(ctx)
		if err != nil {
			// Primary unreachable: back off before asking again.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			timer := time.NewTimer(100 * time.Millisecond)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
			continue
		}
		// One head fetch, then wait event-driven: the notify channel
		// rotates on every applied record, so no polling of the primary
		// while the backlog drains. The timer is only a safety net for
		// an apply loop that stopped without recording an error.
		for m.AppliedSeq() < head {
			if err, _ := f.err.Load().(error); err != nil {
				return err
			}
			notify := m.WALNotify()
			if m.AppliedSeq() >= head {
				break
			}
			timer := time.NewTimer(250 * time.Millisecond)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-notify:
				timer.Stop()
			case <-timer.C:
			}
		}
		return nil
	}
}
