package paretomon

import "fmt"

// Option configures a Monitor at construction time. Options are applied
// in order over the package defaults (exact FilterThenVerify,
// weighted-Jaccard clustering at h = 0.55, append-only); a later option
// overrides an earlier one. Out-of-range values are rejected by
// NewMonitor with an error wrapping ErrBadOption (and, through it,
// ErrInvalidConfig).
type Option func(*Config) error

// WithAlgorithm selects the monitoring engine.
func WithAlgorithm(a Algorithm) Option {
	return func(c *Config) error {
		switch a {
		case AlgorithmBaseline, AlgorithmFilterThenVerify, AlgorithmFilterThenVerifyApprox:
			c.Algorithm = a
			return nil
		default:
			return fmt.Errorf("%w: WithAlgorithm(%d): unknown algorithm", ErrBadOption, int(a))
		}
	}
}

// WithWindow enables sliding-window semantics: an object is alive for n
// subsequent arrivals (Sec. 7 of the paper). n = 0 restores append-only
// monitoring; negative n is invalid.
func WithWindow(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("%w: WithWindow(%d): window must be >= 0", ErrBadOption, n)
		}
		c.Window = n
		return nil
	}
}

// WithMeasure selects the preference-similarity measure driving user
// clustering for the filter-then-verify engines.
func WithMeasure(m Measure) Option {
	return func(c *Config) error {
		switch m {
		case MeasureIntersectionSize, MeasureJaccard, MeasureWeightedIntersection,
			MeasureWeightedJaccard, MeasureVectorJaccard, MeasureVectorWeightedJaccard:
			c.Measure = m
			return nil
		default:
			return fmt.Errorf("%w: WithMeasure(%d): unknown measure", ErrBadOption, int(m))
		}
	}
}

// WithBranchCut sets the dendrogram branch cut h: hierarchical
// agglomerative clustering merges clusters while their similarity is at
// least h. Mutually exclusive with WithClusterCount; the one given last
// wins.
func WithBranchCut(h float64) Option {
	return func(c *Config) error {
		if h < 0 {
			return fmt.Errorf("%w: WithBranchCut(%v): branch cut must be >= 0", ErrBadOption, h)
		}
		c.BranchCut = h
		c.ClusterCount = 0
		return nil
	}
}

// WithClusterCount makes clustering merge until exactly k clusters remain
// (or fewer users than k exist), instead of cutting the dendrogram at a
// similarity threshold. Useful when the similarity scale of a workload is
// unknown but a target cluster budget is. Mutually exclusive with
// WithBranchCut; the one given last wins.
func WithClusterCount(k int) Option {
	return func(c *Config) error {
		if k < 1 {
			return fmt.Errorf("%w: WithClusterCount(%d): cluster count must be >= 1", ErrBadOption, k)
		}
		c.ClusterCount = k
		return nil
	}
}

// WithThetas sets the approximate engine's thresholds (Def. 6.1): theta1
// bounds each approximate common relation's size; theta2 is the minimum
// (exclusive) fraction of cluster members that must share a tuple for it
// to be admitted. Only AlgorithmFilterThenVerifyApprox consults them.
func WithThetas(theta1 int, theta2 float64) Option {
	return func(c *Config) error {
		if theta1 <= 0 {
			return fmt.Errorf("%w: WithThetas: theta1 must be > 0, got %d", ErrBadOption, theta1)
		}
		if theta2 < 0 || theta2 >= 1 {
			return fmt.Errorf("%w: WithThetas: theta2 must be in [0,1), got %v", ErrBadOption, theta2)
		}
		c.Theta1, c.Theta2 = theta1, theta2
		return nil
	}
}

// WithWorkers sets how many worker goroutines ingestion fans out to.
// Users (for Baseline) or whole clusters (for the filter-then-verify
// engines) are partitioned across that many shards, each maintaining its
// slice of the frontiers independently; deliveries are identical to the
// sequential engines. n = 0 (the default) means runtime.GOMAXPROCS(0);
// n <= 1 after that resolution runs the single-threaded engines. The
// effective count is clamped to the number of shardable units, so
// WithWorkers(8) over 3 clusters fans out 3 ways — Stats().Workers
// reports the resolved value.
func WithWorkers(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("%w: WithWorkers(%d): worker count must be >= 0", ErrBadOption, n)
		}
		c.Workers = n
		return nil
	}
}

// WithSubscriptionBuffer sets the per-subscriber delivery channel buffer
// (default 64). A subscriber that falls more than n deliveries behind
// starts losing the oldest pending ones; Stats.DroppedDeliveries counts
// the losses.
func WithSubscriptionBuffer(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("%w: WithSubscriptionBuffer(%d): buffer must be >= 1", ErrBadOption, n)
		}
		c.SubscriptionBuffer = n
		return nil
	}
}

// WithStore makes the monitor durable: every Add, AddBatch and
// AddPreference is appended to the store's write-ahead log before it is
// applied, and a monitor constructed over a non-empty store recovers
// its state — newest valid snapshot plus the WAL tail — during
// NewMonitor. The community and options must match the ones the stored
// state was written under (NewMonitor fails with ErrStateMismatch
// otherwise). Combine with WithSnapshotEvery to bound recovery replay,
// or use Open, which bundles a file store with ownership. The caller
// keeps ownership of the store and closes it after the monitor is done.
func WithStore(s Store) Option {
	return func(c *Config) error {
		if s == nil {
			return fmt.Errorf("%w: WithStore(nil)", ErrBadOption)
		}
		c.Store = s
		return nil
	}
}

// WithSnapshotEvery makes a durable monitor snapshot its full state
// after every n applied WAL records (objects and preference updates),
// then prune log segments recovery no longer needs. Smaller n bounds
// recovery replay and disk growth at the cost of more snapshot writes;
// see docs/PERSISTENCE.md for tuning guidance. n = 0 (the default)
// disables automatic snapshots — state is still fully recoverable from
// the WAL alone, and explicit Snapshot calls remain available. Requires
// WithStore.
func WithSnapshotEvery(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("%w: WithSnapshotEvery(%d): interval must be >= 0", ErrBadOption, n)
		}
		c.SnapshotEvery = n
		return nil
	}
}

// WithConfig overlays a whole Config at once.
//
// Deprecated: it exists to bridge v1 code that assembled a raw Config;
// new code should compose the individual With* options.
func WithConfig(cfg Config) Option {
	return func(c *Config) error {
		sub := c.SubscriptionBuffer
		*c = cfg
		if c.SubscriptionBuffer == 0 {
			c.SubscriptionBuffer = sub
		}
		return nil
	}
}
