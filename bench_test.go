package paretomon_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. 8). Each BenchmarkFigN / BenchmarkTableN wraps the corresponding
// experiment driver at a reduced scale so `go test -bench=.` completes in
// minutes; `go run ./cmd/experiments -full` reruns them at paper scale.
// The reported custom metrics are the quantities the paper plots:
// comparisons/op for the figures' (b) panels and precision/recall for the
// accuracy tables.

import (
	"fmt"
	"strconv"
	"testing"

	paretomon "repro"
	"repro/internal/experiments"
)

// benchOpts is the shared reduced scale for benchmark runs.
func benchOpts() experiments.Options {
	return experiments.Options{
		Objects: 1500,
		Users:   120,
		StreamN: 4000,
		Windows: []int{200, 400},
		Hs:      []float64{0.70, 0.55},
	}
}

// reportComparisons publishes the last-row comparison counts of a "(b)"
// comparisons report as custom benchmark metrics, one per engine column.
func reportComparisons(b *testing.B, rep *experiments.Report) {
	b.Helper()
	last := rep.Rows[len(rep.Rows)-1]
	for i, col := range rep.Columns[1:] {
		v, err := strconv.ParseFloat(last[i+1], 64)
		if err != nil {
			b.Fatalf("bad cell %q: %v", last[i+1], err)
		}
		b.ReportMetric(v, col+"_cmp")
	}
}

// reportAccuracy publishes the worst-row precision and recall of an
// accuracy table as custom metrics.
func reportAccuracy(b *testing.B, rep *experiments.Report) {
	b.Helper()
	minP, minR := 100.0, 100.0
	for _, row := range rep.Rows {
		p, _ := strconv.ParseFloat(row[3], 64)
		r, _ := strconv.ParseFloat(row[4], 64)
		if p < minP {
			minP = p
		}
		if r < minR {
			minR = r
		}
	}
	b.ReportMetric(minP, "min_precision_%")
	b.ReportMetric(minR, "min_recall_%")
}

func benchFigure(b *testing.B, run func(experiments.Options) []*experiments.Report) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reps := run(benchOpts())
		if len(reps) == 2 {
			reportComparisons(b, reps[1])
		} else {
			reportAccuracy(b, reps[0])
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4a/4b: Baseline vs FilterThenVerify vs
// FilterThenVerifyApprox on the movie workload, varying |O|.
func BenchmarkFig4(b *testing.B) { benchFigure(b, experiments.Fig4) }

// BenchmarkFig5 regenerates Fig. 5a/5b on the publication workload.
func BenchmarkFig5(b *testing.B) { benchFigure(b, experiments.Fig5) }

// BenchmarkFig6 regenerates Fig. 6a/6b: movie workload, d ∈ {2, 3, 4}.
func BenchmarkFig6(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkFig7 regenerates Fig. 7a/7b: publication workload, d ∈ {2, 3, 4}.
func BenchmarkFig7(b *testing.B) { benchFigure(b, experiments.Fig7) }

// BenchmarkTable11 regenerates Table 11: accuracy of FilterThenVerifyApprox
// while varying the branch cut h.
func BenchmarkTable11(b *testing.B) { benchFigure(b, experiments.Table11) }

// BenchmarkFig8 regenerates Fig. 8a/8b: sliding-window engines on the
// movie stream, varying W.
func BenchmarkFig8(b *testing.B) { benchFigure(b, experiments.Fig8) }

// BenchmarkFig9 regenerates Fig. 9a/9b on the publication stream.
func BenchmarkFig9(b *testing.B) { benchFigure(b, experiments.Fig9) }

// BenchmarkFig10 regenerates Fig. 10a/10b: movie stream, d ∈ {2, 3, 4}.
func BenchmarkFig10(b *testing.B) { benchFigure(b, experiments.Fig10) }

// BenchmarkFig11 regenerates Fig. 11a/11b: publication stream, d ∈ {2,3,4}.
func BenchmarkFig11(b *testing.B) { benchFigure(b, experiments.Fig11) }

// BenchmarkTable12 regenerates Table 12: accuracy of
// FilterThenVerifyApproxSW while varying W and h.
func BenchmarkTable12(b *testing.B) { benchFigure(b, experiments.Table12) }

// --- ablations beyond the paper (see internal/experiments/ablation.go) ---

// reportAblation publishes min/max comparison counts across the ablation
// rows, exposing the spread the design choice controls.
func reportAblation(b *testing.B, rep *experiments.Report, col int) {
	b.Helper()
	minV, maxV := -1.0, -1.0
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue // non-numeric marker rows
		}
		if minV < 0 || v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	b.ReportMetric(minV, "best_cmp")
	b.ReportMetric(maxV, "worst_cmp")
}

// BenchmarkAblationMeasures compares the six similarity measures as the
// clustering driver for FilterThenVerify.
func BenchmarkAblationMeasures(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reportAblation(b, experiments.AblationMeasures(benchOpts())[0], 4)
	}
}

// BenchmarkAblationTheta sweeps θ1/θ2 for FilterThenVerifyApprox.
func BenchmarkAblationTheta(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reportAblation(b, experiments.AblationTheta(benchOpts())[0], 2)
	}
}

// BenchmarkAblationGranularity sweeps the branch cut across the operative
// range, exposing the k-vs-m U-shape of Sec. 4's complexity analysis.
func BenchmarkAblationGranularity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reportAblation(b, experiments.AblationGranularity(benchOpts())[0], 3)
	}
}

// benchCommunity builds a moderately sized synthetic community and object
// stream for exercising the public ingestion API.
func benchCommunity(b *testing.B, users, objects int) (*paretomon.Community, []paretomon.Object) {
	b.Helper()
	brands := []string{"Apple", "Lenovo", "Sony", "Toshiba", "Samsung", "Acer", "Asus", "Dell"}
	cpus := []string{"single", "dual", "triple", "quad", "octa"}
	s := paretomon.NewSchema("brand", "CPU")
	com := paretomon.NewCommunity(s)
	for i := 0; i < users; i++ {
		u, err := com.AddUser(fmt.Sprintf("u%d", i))
		if err != nil {
			b.Fatal(err)
		}
		// Rotate a preference chain so users differ but overlap.
		for j := 0; j+1 < len(brands); j++ {
			_ = u.Prefer("brand", brands[(i+j)%len(brands)], brands[(i+j+1)%len(brands)])
		}
		_ = u.PreferChain("CPU", cpus[i%len(cpus)], cpus[(i+1)%len(cpus)], cpus[(i+2)%len(cpus)])
	}
	objs := make([]paretomon.Object, objects)
	for i := range objs {
		objs[i] = paretomon.Object{
			Name:   fmt.Sprintf("o%d", i),
			Values: []string{brands[i%len(brands)], cpus[(i/3)%len(cpus)]},
		}
	}
	return com, objs
}

// BenchmarkMonitorAdd ingests one object at a time through the v2 API.
func BenchmarkMonitorAdd(b *testing.B) {
	com, objs := benchCommunity(b, 60, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mon, err := paretomon.NewMonitor(com, paretomon.WithBranchCut(0.3))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, o := range objs {
			if _, err := mon.Add(o.Name, o.Values...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMonitorAddBatch ingests the same stream as one batch,
// measuring the amortization of the per-arrival locking and allocation.
func BenchmarkMonitorAddBatch(b *testing.B) {
	com, objs := benchCommunity(b, 60, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mon, err := paretomon.NewMonitor(com, paretomon.WithBranchCut(0.3))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := mon.AddBatch(objs); err != nil {
			b.Fatal(err)
		}
	}
}
